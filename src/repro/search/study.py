"""Budgeted study orchestration: ask/tell batches over cached trials.

:class:`Study` runs a :class:`~repro.search.optimizer.ParetoTPESampler`
against one benchmark dataset for a fixed trial budget.  Each sampled
configuration maps to **one deterministic cache identity**
(:func:`repro.core.sharding.canonical_trial_key`), and trials resolve in
layers before anything trains:

1. the per-trial entry itself (a previous study evaluated this point);
2. the per-dataset suite entry -- configurations on the paper grid extract
   their :class:`~repro.core.exploration.DesignPoint` straight out of a
   cached :class:`~repro.core.codesign.CoDesignResult` sweep and write it
   through under the trial key (the warm-start that makes a nightly study
   against the assembled CI store nearly free);
3. a fresh, fully seeded training job fanned through the
   :class:`~repro.core.executor.Executor`.

Training mirrors :meth:`DesignSpaceExplorer.evaluate_point` argument for
argument (same volts-normalized training sigma, same seeded trainer), so a
warm-started trial and a freshly trained one are bit-identical -- which is
what lets cache layers stack without changing results.  Batches have a
fixed size independent of ``jobs`` and the sampler is told in trial-number
order, so ``jobs=1`` and ``jobs=N`` produce identical study records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.executor import get_executor
from repro.core.exploration import DEFAULT_DEPTHS, DEFAULT_TAUS, grid_points
from repro.core.metrics import HardwareReport
from repro.core.pareto import non_dominated_indices
from repro.core.sharding import (
    MissingResultsError,
    canonical_trial_key,
    suite_result_key,
)
from repro.core.store import ResultStore
from repro.core.variation import (
    VariationAnalysis,
    canonical_training_knobs,
    simulate_offset_variation,
    variation_result_key,
)
from repro.pdk.egfet import default_technology
from repro.search.optimizer import ParetoTPESampler
from repro.search.space import SearchSpace, paper_space

#: Objective metrics a study can minimize.  Maximized metrics (accuracy)
#: are requested with a leading ``-`` ("minimize the negated metric").
OBJECTIVE_METRICS = ("accuracy", "power", "area", "mean_accuracy_drop")

#: Named technology corners a trial configuration may select.  Only the
#: calibrated EGFET corner exists today; the indirection keeps technology a
#: first-class search dimension for when more corners land.
_TECHNOLOGIES = {"default": default_technology}

#: JSON study-record layout version (``repro.cli search --json``).
STUDY_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Objective:
    """One parsed objective: the metric and the minimization sign."""

    metric: str
    sign: float  #: +1 minimizes the metric, -1 minimizes its negation
    spec: str  #: the original spelling, kept for records and labels

    def value(self, trial: "Trial") -> float:
        metric = getattr(trial, _METRIC_FIELDS[self.metric])
        if metric is None:
            raise ValueError(
                f"trial {trial.number} has no {self.metric!r} measurement"
            )
        return self.sign * float(metric)


_METRIC_FIELDS = {
    "accuracy": "accuracy",
    "power": "power_uw",
    "area": "area_mm2",
    "mean_accuracy_drop": "mean_accuracy_drop",
}


def parse_objectives(specs) -> tuple[Objective, ...]:
    """Parse objective spellings like ``("-accuracy", "power")``.

    Every objective is minimized; a leading ``-`` negates the metric first
    (so ``-accuracy`` maximizes accuracy).  At least two objectives are
    required -- a single-objective request is a constrained selection, not
    a Pareto search (use :func:`repro.core.exploration.select_best_design`).
    """
    parsed = []
    for spec in specs:
        spec = str(spec).strip()
        sign, metric = (
            (-1.0, spec[1:]) if spec.startswith("-") else (1.0, spec)
        )
        if metric not in OBJECTIVE_METRICS:
            raise ValueError(
                f"unknown objective {spec!r}; metrics: {OBJECTIVE_METRICS} "
                "(prefix with '-' to maximize)"
            )
        parsed.append(Objective(metric=metric, sign=sign, spec=spec))
    if len(parsed) < 2:
        raise ValueError("a multi-objective study needs at least two objectives")
    if len({o.metric for o in parsed}) != len(parsed):
        raise ValueError("objectives must use distinct metrics")
    return tuple(parsed)


@dataclass(frozen=True)
class Trial:
    """One evaluated configuration of a study."""

    number: int
    config: dict = field(repr=False)
    store_key: str = field(repr=False)
    accuracy: float
    power_uw: float
    area_mm2: float
    mean_accuracy_drop: float | None
    from_cache: bool
    objectives: tuple[float, ...]

    def record(self) -> dict:
        """JSON-serializable row of the study record."""
        return {
            "number": self.number,
            "config": dict(self.config),
            "from_cache": self.from_cache,
            "accuracy": self.accuracy,
            "power_uw": self.power_uw,
            "area_mm2": self.area_mm2,
            "mean_accuracy_drop": self.mean_accuracy_drop,
            "objectives": list(self.objectives),
        }


@dataclass(frozen=True)
class StudyResult:
    """Outcome of one :meth:`Study.run`: trials, front, cache accounting.

    Deliberately timestamp-free: the record is a pure function of the study
    configuration and the seed, so bit-reproducibility (and the serial ==
    parallel guarantee) can be asserted on the serialized form directly.
    """

    dataset: str
    seed: int
    budget: int
    batch_size: int
    objectives: tuple[str, ...]
    sigma_v: float | None
    variation_trials: int
    space: dict
    trials: tuple[Trial, ...]
    front_numbers: tuple[int, ...]
    n_from_cache: int
    n_trained: int

    @property
    def front(self) -> tuple[Trial, ...]:
        """The non-dominated trials, sorted by objective tuple."""
        by_number = {trial.number: trial for trial in self.trials}
        return tuple(by_number[n] for n in self.front_numbers)

    def to_json_dict(self) -> dict:
        return {
            "schema_version": STUDY_SCHEMA_VERSION,
            "kind": "search_study",
            "dataset": self.dataset,
            "seed": self.seed,
            "budget": self.budget,
            "batch_size": self.batch_size,
            "objectives": list(self.objectives),
            "sigma_v": self.sigma_v,
            "variation_trials": self.variation_trials,
            "space": self.space,
            "n_trials": len(self.trials),
            "n_from_cache": self.n_from_cache,
            "n_trained": self.n_trained,
            "trials": [trial.record() for trial in self.trials],
            "front": list(self.front_numbers),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)


def _resolve_technology(name: str):
    try:
        return _TECHNOLOGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown technology {name!r}; known: {tuple(sorted(_TECHNOLOGIES))}"
        ) from None


def _trial_job(
    dataset: str,
    seed: int,
    depth: int,
    tau: float,
    resolution_bits: int,
    technology_name: str,
    test_size: float,
    training_sigma: float,
    robustness_weight: float,
    need_outcome: bool,
    sigma_v: float | None,
    variation_trials: int,
    ppa_backend=None,
) -> tuple[dict | None, VariationAnalysis | None]:
    """Top-level (picklable) job: train and measure one design point.

    Self-contained and deterministic, mirroring
    :meth:`~repro.core.exploration.DesignSpaceExplorer.evaluate_point` (and
    the sharded ``_variation_unit_job``) exactly -- same trainer arguments,
    same volts-normalized training sigma, same seeded split and simulation
    -- so the payload cached under the trial key is bit-identical to the
    suite sweep's design point at the same configuration.
    """
    from repro.core.adc_aware_training import ADCAwareTrainer
    from repro.core.exploration import proposed_hardware_report
    from repro.datasets.registry import load_dataset
    from repro.mltrees.evaluation import evaluate_tree_accuracy, train_test_split
    from repro.mltrees.quantize import quantize_dataset

    technology = _resolve_technology(technology_name)
    data = load_dataset(dataset, seed=seed)
    X_train, X_test, y_train, y_test = train_test_split(
        data.X, data.y, test_size=test_size, seed=seed
    )
    trainer = ADCAwareTrainer(
        max_depth=depth,
        gini_threshold=tau,
        resolution_bits=resolution_bits,
        seed=seed,
        training_sigma=training_sigma / technology.vdd,
        robustness_weight=(robustness_weight if training_sigma > 0 else 0.0),
    )
    tree = trainer.fit(
        quantize_dataset(X_train, resolution_bits), y_train, data.n_classes
    )
    payload = None
    if need_outcome:
        accuracy = evaluate_tree_accuracy(
            tree, quantize_dataset(X_test, resolution_bits), y_test
        )
        hardware = proposed_hardware_report(
            tree,
            technology,
            name=f"codesign[d={depth},tau={tau:g}]",
            ppa_backend=ppa_backend,
        )
        payload = {"accuracy": float(accuracy), "hardware": hardware}
    analysis = None
    if sigma_v is not None:
        analysis = simulate_offset_variation(
            tree, X_test, y_test, sigma_v, n_trials=variation_trials,
            technology=technology, seed=seed,
        )
    return payload, analysis


class Study:
    """A budgeted multi-objective search over one benchmark dataset.

    Parameters
    ----------
    dataset:
        Benchmark name (paper abbreviations resolve like everywhere else).
    space:
        The :class:`~repro.search.space.SearchSpace` to sample (default:
        the paper grid).
    objectives:
        Objective spellings, each minimized; prefix ``-`` to maximize
        (default ``("-accuracy", "power")``).  ``mean_accuracy_drop``
        requires ``sigma_v``.
    seed:
        Seeds the sampler *and* every trial's training/split/simulation.
    sigma_v / variation_trials:
        Comparator-offset Monte-Carlo configuration, needed only when an
        objective reads ``mean_accuracy_drop``.  Summaries resolve through
        the exact variation keys ``repro.cli variation`` / ``explore`` use,
        so studies share their Monte-Carlo pool.
    store / cache_dir / use_cache:
        Result-store wiring, same contract as the suite runners.
    cache_only:
        Strict assemble discipline: every trial must resolve from the cache
        layers (trial entry, suite extraction, or -- for robustness
        objectives -- the variation pool); a trial that would have to train
        raises :class:`~repro.core.sharding.MissingResultsError` listing the
        missing keys instead.  The mode CI uses to *prove* a study
        warm-started 100 % from an assembled store.
    batch_size:
        Trials asked (and fanned out) per ask/tell round.  Fixed
        independently of ``jobs`` -- that is what keeps serial and parallel
        study records identical.
    sampler:
        Optional pre-built sampler (tests inject deterministic stubs);
        defaults to a :class:`~repro.search.optimizer.ParetoTPESampler`
        seeded with ``seed``.
    ppa_backend:
        Source of every trial's hardware costs (default: the analytic
        cell-count model, bit-identical to before the backend interface
        existed).  A non-analytic backend changes the power/area objectives,
        so such studies never read or write the trial/suite caches (and
        refuse ``cache_only``): report-backed numbers must not alias the
        analytic entries stored under the same configuration keys.
    """

    def __init__(
        self,
        dataset: str,
        space: SearchSpace | None = None,
        objectives=("-accuracy", "power"),
        seed: int = 0,
        sigma_v: float | None = None,
        variation_trials: int = 100,
        store: ResultStore | None = None,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        test_size: float = 0.3,
        batch_size: int = 4,
        sampler: ParetoTPESampler | None = None,
        cache_only: bool = False,
        ppa_backend=None,
    ):
        from repro.circuits.ppa import resolve_ppa_backend
        from repro.datasets.registry import canonical_name

        self.ppa_backend = resolve_ppa_backend(ppa_backend)
        if not getattr(self.ppa_backend, "is_analytic", False):
            if cache_only:
                raise ValueError(
                    "cache_only requires the analytic PPA backend: cached "
                    "trials hold analytic costs, which a report backend "
                    "would contradict"
                )
            use_cache = False
        if cache_only and not use_cache:
            raise ValueError("cache_only requires use_cache=True")
        self.cache_only = bool(cache_only)
        self.dataset = canonical_name(dataset)
        self.space = space if space is not None else paper_space()
        self.objectives = parse_objectives(objectives)
        self.seed = int(seed)
        self.sigma_v = None if sigma_v is None else float(sigma_v)
        self.variation_trials = int(variation_trials)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self.test_size = float(test_size)
        self.use_cache = bool(use_cache)
        if any(o.metric == "mean_accuracy_drop" for o in self.objectives):
            if self.sigma_v is None:
                raise ValueError(
                    "the mean_accuracy_drop objective requires sigma_v"
                )
        if self.use_cache and store is None:
            from repro.analysis.experiments import default_store

            store = ResultStore(cache_dir) if cache_dir is not None else default_store()
        self.store = store if self.use_cache else None
        self.sampler = (
            sampler
            if sampler is not None
            else ParetoTPESampler(self.space, seed=self.seed)
        )
        #: Per-training-knobs memo of suite lookups (key -> result or None),
        #: so a 40-trial study loads the suite entry once, not 40 times.
        self._suite_results: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # cache resolution
    # ------------------------------------------------------------------ #
    def trial_key(self, config: dict) -> str:
        """The canonical cache identity of one configuration's outcome."""
        config = self.space.canonical(config)
        return canonical_trial_key(
            self.dataset,
            self.seed,
            config["depth"],
            config["tau"],
            resolution_bits=config["resolution_bits"],
            technology=_resolve_technology(config["technology"]),
            test_size=self.test_size,
            training_sigma=config["training_sigma"],
            robustness_weight=config["robustness_weight"],
        )

    def _suite_point(self, config: dict):
        """Extract the config's DesignPoint from a cached suite sweep, if any.

        Only configurations on the paper protocol qualify (default
        technology, 4-bit ADCs, the 70/30 split, (depth, tau) on the
        default grid); both suite variants are probed, since either caches
        the same exploration sweep.
        """
        if self.store is None:
            return None
        if (
            config["technology"] != "default"
            or int(config["resolution_bits"]) != 4
            or self.test_size != 0.3
        ):
            return None
        point = (int(config["depth"]), float(config["tau"]))
        grid = grid_points(DEFAULT_DEPTHS, DEFAULT_TAUS)
        if point not in grid:
            return None
        sigma, weight = canonical_training_knobs(
            config["training_sigma"], config["robustness_weight"]
        )
        for include_approximate in (False, True):
            key = suite_result_key(
                self.dataset, self.seed, include_approximate,
                DEFAULT_DEPTHS, DEFAULT_TAUS,
                training_sigma=sigma, robustness_weight=weight,
            )
            if key not in self._suite_results:
                # Membership probe first: a miss on the second variant must
                # not inflate the store's miss counters on every trial.
                self._suite_results[key] = (
                    self.store.get(key) if key in self.store else None
                )
            result = self._suite_results[key]
            if result is not None:
                design = result.exploration[grid.index(point)]
                return {
                    "accuracy": float(design.accuracy),
                    "hardware": design.hardware,
                }
        return None

    def _variation_key(self, config: dict) -> str:
        return variation_result_key(
            self.dataset,
            self.seed,
            self.sigma_v,
            self.variation_trials,
            config["depth"],
            config["tau"],
            config["resolution_bits"],
            technology=_resolve_technology(config["technology"]),
            test_size=self.test_size,
            training_sigma=config["training_sigma"],
            robustness_weight=config["robustness_weight"],
        )

    # ------------------------------------------------------------------ #
    # the run loop
    # ------------------------------------------------------------------ #
    def run(self, budget: int, jobs: int | None = None) -> StudyResult:
        """Evaluate up to ``budget`` trials and extract the Pareto front.

        Stops early when the sampler exhausts a finite space.  ``jobs``
        fans each batch's unresolved trials across worker processes;
        results are bit-identical to a serial run.
        """
        if budget < 0:
            raise ValueError("budget must be >= 0")
        trials: list[Trial] = []
        n_from_cache = n_trained = 0
        with get_executor(jobs) as executor:
            while len(trials) < budget:
                configs = self.sampler.ask(min(self.batch_size, budget - len(trials)))
                if not configs:
                    break
                batch = self._evaluate_batch(configs, executor, len(trials))
                for trial in batch:
                    trials.append(trial)
                    # Tell in trial-number order: the sampler state -- and
                    # thus every later ask -- is independent of `jobs`.
                    self.sampler.tell(trial.config, trial.objectives)
                    n_from_cache += int(trial.from_cache)
                    n_trained += int(not trial.from_cache)
        if self.store is not None:
            self.store.record_search_stats(
                from_cache=n_from_cache, trained=n_trained
            )
            self.store.flush_stats()
        front = non_dominated_indices([trial.objectives for trial in trials])
        front_numbers = tuple(
            trials[i].number
            for i in sorted(front, key=lambda i: (trials[i].objectives, i))
        )
        return StudyResult(
            dataset=self.dataset,
            seed=self.seed,
            budget=int(budget),
            batch_size=self.batch_size,
            objectives=tuple(o.spec for o in self.objectives),
            sigma_v=self.sigma_v,
            variation_trials=self.variation_trials,
            space=self.space.describe(),
            trials=tuple(trials),
            front_numbers=front_numbers,
            n_from_cache=n_from_cache,
            n_trained=n_trained,
        )

    def _evaluate_batch(self, configs, executor, first_number: int) -> list[Trial]:
        """Resolve one ask batch: cache layers first, then fanned-out jobs."""
        resolved: list[dict | None] = []
        analyses: list[VariationAnalysis | None] = []
        pending: list[int] = []
        for index, config in enumerate(configs):
            payload = None
            if self.store is not None:
                payload = self.store.get(self.trial_key(config))
                if payload is None:
                    payload = self._suite_point(config)
                    if payload is not None:
                        self.store.put(self.trial_key(config), payload)
            analysis = None
            if self.sigma_v is not None and self.store is not None:
                analysis = self.store.get(self._variation_key(config))
            resolved.append(payload)
            analyses.append(analysis)
            needs_variation = self.sigma_v is not None and analysis is None
            if payload is None or needs_variation:
                pending.append(index)

        if pending and self.cache_only:
            missing = []
            for index in pending:
                config = configs[index]
                point = f"{self.dataset}[d={config['depth']},tau={config['tau']:g}]"
                if resolved[index] is None:
                    missing.append((f"trial:{point}", self.trial_key(config)))
                if self.sigma_v is not None and analyses[index] is None:
                    missing.append(
                        (
                            f"variation:{point}[sigma={self.sigma_v:g}]",
                            self._variation_key(config),
                        )
                    )
            if self.store is not None:
                self.store.flush_stats()
            raise MissingResultsError(missing)

        if pending:
            tasks = []
            for index in pending:
                config = configs[index]
                tasks.append(
                    (
                        self.dataset,
                        self.seed,
                        int(config["depth"]),
                        float(config["tau"]),
                        int(config["resolution_bits"]),
                        config["technology"],
                        self.test_size,
                        float(config["training_sigma"]),
                        float(config["robustness_weight"]),
                        resolved[index] is None,
                        self.sigma_v if analyses[index] is None else None,
                        self.variation_trials,
                        self.ppa_backend,
                    )
                )
            for index, (payload, analysis) in zip(
                pending, executor.map(_trial_job, tasks)
            ):
                if payload is not None:
                    resolved[index] = payload
                    if self.store is not None:
                        self.store.put(self.trial_key(configs[index]), payload)
                if analysis is not None:
                    analyses[index] = analysis
                    if self.store is not None:
                        self.store.put(self._variation_key(configs[index]), analysis)

        trained = set(pending)
        batch: list[Trial] = []
        for index, config in enumerate(configs):
            payload = resolved[index]
            hardware: HardwareReport = payload["hardware"]
            analysis = analyses[index]
            drop = None if analysis is None else float(analysis.mean_accuracy_drop)
            partial = Trial(
                number=first_number + index,
                config=config,
                store_key=self.trial_key(config),
                accuracy=float(payload["accuracy"]),
                power_uw=float(hardware.total_power_uw),
                area_mm2=float(hardware.total_area_mm2),
                mean_accuracy_drop=drop,
                from_cache=index not in trained,
                objectives=(),
            )
            objectives = tuple(o.value(partial) for o in self.objectives)
            batch.append(replace(partial, objectives=objectives))
        return batch
