"""Bespoke ADC front-end generation from trained tree parameters (Section III-B).

Given the unary digits a trained decision tree consumes
(:attr:`~repro.core.unary_tree.UnaryDecisionTree.required_digits`), each used
input feature receives a bespoke ADC that retains exactly the comparators for
those digits and nothing else -- no priority encoder, no unused comparators.
"""

from __future__ import annotations

from repro.adc.bespoke import BespokeADC
from repro.adc.frontend import BespokeFrontEnd
from repro.core.unary_tree import UnaryDecisionTree
from repro.mltrees.tree import DecisionTree
from repro.pdk.egfet import EGFETTechnology, default_technology


def _required_digits(model: UnaryDecisionTree | DecisionTree) -> dict[int, tuple[int, ...]]:
    """Per-feature required unary digits of either tree representation."""
    if isinstance(model, UnaryDecisionTree):
        return dict(model.required_digits)
    return model.required_levels()


def build_bespoke_adcs(
    model: UnaryDecisionTree | DecisionTree,
    technology: EGFETTechnology | None = None,
    feature_names: list[str] | None = None,
) -> dict[int, BespokeADC]:
    """Create one bespoke ADC per used input feature of the model.

    Parameters
    ----------
    model:
        A trained :class:`DecisionTree` or its unary translation.
    technology:
        EGFET technology (defaults to the calibrated behavioral PDK).
    feature_names:
        Optional feature names used to label the ADC channels.

    Returns
    -------
    dict[int, BespokeADC]
        Mapping ``feature index -> bespoke ADC`` retaining exactly the
        comparators required by the tree.
    """
    technology = technology if technology is not None else default_technology()
    resolution_bits = (
        model.resolution_bits
        if isinstance(model, (UnaryDecisionTree, DecisionTree))
        else technology.resolution_bits
    )
    adcs: dict[int, BespokeADC] = {}
    for feature, levels in _required_digits(model).items():
        name = (
            feature_names[feature]
            if feature_names is not None and feature < len(feature_names)
            else f"I{feature}"
        )
        adcs[feature] = BespokeADC(
            retained_levels=tuple(levels),
            resolution_bits=resolution_bits,
            technology=technology,
            feature_name=name,
        )
    return adcs


def build_bespoke_frontend(
    model: UnaryDecisionTree | DecisionTree,
    technology: EGFETTechnology | None = None,
    feature_names: list[str] | None = None,
) -> BespokeFrontEnd:
    """Create the complete bespoke analog front end for the model."""
    adcs = build_bespoke_adcs(model, technology, feature_names)
    if not adcs:
        raise ValueError(
            "the trained tree uses no input feature at all (single-leaf tree); "
            "there is no front end to build"
        )
    return BespokeFrontEnd(adcs)
