"""Design-space exploration of the co-design hyperparameters (Section IV).

The paper brute-forces the two training hyperparameters -- tree depth
(2..8) and Gini tolerance tau (0..0.03 in steps of 0.005) -- trains one
ADC-aware tree per combination, and then picks, per accuracy-loss constraint
(0 %, 1 %, 5 %), the most hardware-efficient design that still meets the
constraint.  :class:`DesignSpaceExplorer` reproduces that sweep and
:func:`select_best_design` the constrained selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.bespoke_adc import build_bespoke_frontend
from repro.core.executor import Executor, SerialExecutor
from repro.core.metrics import HardwareReport
from repro.core.unary_tree import UnaryDecisionTree
from repro.mltrees.evaluation import accuracy_score
from repro.mltrees.tree import DecisionTree
from repro.pdk.egfet import EGFETTechnology, default_technology

#: Default tau grid of the paper: 0 to 0.03 in increments of 0.005.
DEFAULT_TAUS: tuple[float, ...] = (0.0, 0.005, 0.010, 0.015, 0.020, 0.025, 0.030)

#: Default depth grid of the paper: 2 to 8 with a step of 1.
DEFAULT_DEPTHS: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated point of the depth x tau design space."""

    dataset: str
    depth: int
    tau: float
    accuracy: float
    hardware: HardwareReport
    tree: DecisionTree = field(repr=False)

    @property
    def total_area_mm2(self) -> float:
        """Total area of the design point."""
        return self.hardware.total_area_mm2

    @property
    def total_power_uw(self) -> float:
        """Total power of the design point in uW."""
        return self.hardware.total_power_uw


def proposed_hardware_report(
    tree: DecisionTree,
    technology: EGFETTechnology | None = None,
    name: str = "proposed",
) -> HardwareReport:
    """Hardware report of a tree implemented with the proposed architecture.

    The tree is translated into the parallel unary architecture, its
    two-level label logic is synthesized and costed, and every used input
    receives a bespoke ADC retaining only the required unary digits.
    """
    technology = technology if technology is not None else default_technology()
    unary = UnaryDecisionTree(tree)
    digital = unary.digital_report(technology)
    if unary.n_inputs > 0:
        frontend = build_bespoke_frontend(unary, technology)
        adc_area, adc_power = frontend.area_mm2, frontend.power_uw
        n_adc_comparators = frontend.n_comparators
    else:  # degenerate single-leaf tree: nothing to digitize
        adc_area, adc_power, n_adc_comparators = 0.0, 0.0, 0
    return HardwareReport(
        name=name,
        adc_area_mm2=adc_area,
        adc_power_uw=adc_power,
        digital_area_mm2=digital.area_mm2,
        digital_power_uw=digital.power_uw,
        n_inputs=unary.n_inputs,
        n_tree_comparators=0,  # the unary architecture removes all tree comparators
        n_adc_comparators=n_adc_comparators,
    )


class DesignSpaceExplorer:
    """Brute-force exploration of the (depth, tau) hyperparameter grid."""

    def __init__(
        self,
        technology: EGFETTechnology | None = None,
        resolution_bits: int = 4,
        depths: tuple[int, ...] = DEFAULT_DEPTHS,
        taus: tuple[float, ...] = DEFAULT_TAUS,
        seed: int = 0,
    ):
        self.technology = technology if technology is not None else default_technology()
        self.resolution_bits = resolution_bits
        self.depths = tuple(depths)
        self.taus = tuple(taus)
        self.seed = seed
        if not self.depths or not self.taus:
            raise ValueError("the exploration grid must not be empty")

    def evaluate_point(
        self,
        X_train_levels: np.ndarray,
        y_train: np.ndarray,
        X_test_levels: np.ndarray,
        y_test: np.ndarray,
        n_classes: int,
        depth: int,
        tau: float,
        dataset_name: str = "",
    ) -> DesignPoint:
        """Train and cost one (depth, tau) combination."""
        trainer = ADCAwareTrainer(
            max_depth=depth,
            gini_threshold=tau,
            resolution_bits=self.resolution_bits,
            seed=self.seed,
        )
        tree = trainer.fit(X_train_levels, y_train, n_classes)
        accuracy = accuracy_score(y_test, tree.predict_levels(X_test_levels))
        hardware = proposed_hardware_report(
            tree, self.technology, name=f"codesign[d={depth},tau={tau:g}]"
        )
        return DesignPoint(
            dataset=dataset_name,
            depth=depth,
            tau=tau,
            accuracy=accuracy,
            hardware=hardware,
            tree=tree,
        )

    def explore(
        self,
        X_train_levels: np.ndarray,
        y_train: np.ndarray,
        X_test_levels: np.ndarray,
        y_test: np.ndarray,
        n_classes: int,
        dataset_name: str = "",
        executor: Executor | None = None,
    ) -> list[DesignPoint]:
        """Evaluate the full depth x tau grid.

        Every training is independent (the paper parallelizes them across a
        server): each (depth, tau) point is submitted as one job to
        ``executor`` (default: in-process serial execution).  Because every
        job is seeded, serial and parallel runs return identical points in
        the same depth-major order.
        """
        executor = executor if executor is not None else SerialExecutor()
        tasks = [
            (
                self,
                X_train_levels,
                y_train,
                X_test_levels,
                y_test,
                n_classes,
                depth,
                tau,
                dataset_name,
            )
            for depth in self.depths
            for tau in self.taus
        ]
        return executor.map(_evaluate_point_job, tasks)


def _evaluate_point_job(
    explorer: DesignSpaceExplorer,
    X_train_levels: np.ndarray,
    y_train: np.ndarray,
    X_test_levels: np.ndarray,
    y_test: np.ndarray,
    n_classes: int,
    depth: int,
    tau: float,
    dataset_name: str,
) -> DesignPoint:
    """Picklable top-level job wrapper for :meth:`DesignSpaceExplorer.explore`."""
    return explorer.evaluate_point(
        X_train_levels,
        y_train,
        X_test_levels,
        y_test,
        n_classes,
        depth,
        tau,
        dataset_name,
    )


def select_best_design(
    points: list[DesignPoint],
    reference_accuracy: float,
    max_accuracy_loss: float,
    objective: str = "power",
) -> DesignPoint | None:
    """Pick the most hardware-efficient design meeting the accuracy constraint.

    Parameters
    ----------
    points:
        Evaluated design points.
    reference_accuracy:
        Accuracy of the baseline the loss is measured against.
    max_accuracy_loss:
        Maximum allowed absolute accuracy drop (0.0, 0.01 and 0.05 in the
        paper).
    objective:
        ``"power"`` (default, the binding constraint for self-powered
        operation) or ``"area"``.

    Returns
    -------
    DesignPoint | None
        The selected point, or ``None`` when no point satisfies the
        constraint.
    """
    if objective not in {"power", "area"}:
        raise ValueError("objective must be 'power' or 'area'")
    floor = reference_accuracy - max_accuracy_loss
    feasible = [point for point in points if point.accuracy >= floor - 1e-12]
    if not feasible:
        return None
    if objective == "power":

        def key(p: DesignPoint):
            return (p.hardware.total_power_uw, p.hardware.total_area_mm2)

    else:

        def key(p: DesignPoint):
            return (p.hardware.total_area_mm2, p.hardware.total_power_uw)

    return min(feasible, key=key)
