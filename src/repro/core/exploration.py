"""Design-space exploration of the co-design hyperparameters (Section IV).

The paper brute-forces the two training hyperparameters -- tree depth
(2..8) and Gini tolerance tau (0..0.03 in steps of 0.005) -- trains one
ADC-aware tree per combination, and then picks, per accuracy-loss constraint
(0 %, 1 %, 5 %), the most hardware-efficient design that still meets the
constraint.  :class:`DesignSpaceExplorer` reproduces that sweep and
:func:`select_best_design` the constrained selection.

On top of the nominal sweep, :meth:`DesignSpaceExplorer.evaluate_robustness`
attaches a comparator-offset Monte-Carlo summary to every design point (the
variation-aware extension): per-point analyses fan out through the
:class:`~repro.core.executor.Executor` and are cached in the
:class:`~repro.core.store.ResultStore` under the same per-seed variation
keys ``repro.cli variation`` uses, and :func:`select_best_design` can then
constrain the selection by ``max_accuracy_drop`` -- the offset-aware
co-design of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.bespoke_adc import build_bespoke_frontend
from repro.core.executor import Executor, SerialExecutor
from repro.core.metrics import HardwareReport
from repro.core.store import ResultStore
from repro.core.unary_tree import UnaryDecisionTree
from repro.core.variation import (
    VariationAnalysis,
    simulate_offset_variation,
    variation_result_key,
)
from repro.mltrees.evaluation import evaluate_tree_accuracy, resolve_engine
from repro.mltrees.tree import DecisionTree
from repro.pdk.egfet import EGFETTechnology, default_technology

#: Default tau grid of the paper: 0 to 0.03 in increments of 0.005.
DEFAULT_TAUS: tuple[float, ...] = (0.0, 0.005, 0.010, 0.015, 0.020, 0.025, 0.030)

#: Default depth grid of the paper: 2 to 8 with a step of 1.
DEFAULT_DEPTHS: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)


def grid_points(
    depths: tuple[int, ...], taus: tuple[float, ...]
) -> tuple[tuple[int, float], ...]:
    """The (depth, tau) grid in canonical depth-major order.

    Single source of truth for every consumer that enumerates the
    exploration grid -- the sweep itself, result ordering, and the sharded
    work-unit planner (:mod:`repro.core.sharding`) -- so grid positions,
    table rows and shard assignments can never disagree about order.
    """
    return tuple((depth, tau) for depth in depths for tau in taus)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated point of the depth x tau design space.

    ``robustness`` is ``None`` after the nominal sweep; the variation-aware
    pass (:meth:`DesignSpaceExplorer.evaluate_robustness`) fills it with the
    point's comparator-offset Monte-Carlo summary, which surfaces as the
    ``mean_accuracy_drop`` / ``worst_case_drop`` columns of the analysis
    tables.
    """

    dataset: str
    depth: int
    tau: float
    accuracy: float
    hardware: HardwareReport
    tree: DecisionTree = field(repr=False)
    robustness: VariationAnalysis | None = field(default=None, repr=False)

    @property
    def total_area_mm2(self) -> float:
        """Total area of the design point."""
        return self.hardware.total_area_mm2

    @property
    def total_power_uw(self) -> float:
        """Total power of the design point in uW."""
        return self.hardware.total_power_uw

    @property
    def mean_accuracy_drop(self) -> float | None:
        """Average accuracy lost to comparator offsets (None before the pass)."""
        return None if self.robustness is None else self.robustness.mean_accuracy_drop

    @property
    def worst_case_drop(self) -> float | None:
        """Worst-case accuracy lost to comparator offsets (None before the pass)."""
        return None if self.robustness is None else self.robustness.worst_case_drop

    def with_robustness(self, analysis: VariationAnalysis) -> "DesignPoint":
        """Copy of this point carrying a Monte-Carlo robustness summary."""
        return replace(self, robustness=analysis)

    @property
    def kernel(self):
        """The point's compiled bit-parallel inference kernel.

        Compiled on first access and cached on the underlying tree (see
        :func:`repro.core.bitkernel.compile_tree_kernel`), so every copy of
        this point -- including the robustness-annotated ones, which share
        the tree instance -- reuses one compilation.  This is the kernel a
        serving layer evaluates promoted designs with.
        """
        from repro.core.bitkernel import compile_tree_kernel

        return compile_tree_kernel(self.tree)


def proposed_hardware_report(
    tree: DecisionTree,
    technology: EGFETTechnology | None = None,
    name: str = "proposed",
    ppa_backend=None,
) -> HardwareReport:
    """Hardware report of a tree implemented with the proposed architecture.

    The tree is translated into the parallel unary architecture, its
    two-level label logic is synthesized and costed, and every used input
    receives a bespoke ADC retaining only the required unary digits.

    ``ppa_backend`` selects where the *digital* costs come from (default:
    the analytic cell-count model, bit-identical to the pre-backend code
    path; see :mod:`repro.circuits.ppa`).  The bespoke-ADC front end is an
    analog block outside any digital PPA flow, so its costs always come from
    the behavioral ADC model.
    """
    technology = technology if technology is not None else default_technology()
    unary = UnaryDecisionTree(tree)
    digital = unary.digital_report(technology, ppa_backend=ppa_backend)
    if unary.n_inputs > 0:
        frontend = build_bespoke_frontend(unary, technology)
        adc_area, adc_power = frontend.area_mm2, frontend.power_uw
        n_adc_comparators = frontend.n_comparators
    else:  # degenerate single-leaf tree: nothing to digitize
        adc_area, adc_power, n_adc_comparators = 0.0, 0.0, 0
    return HardwareReport(
        name=name,
        adc_area_mm2=adc_area,
        adc_power_uw=adc_power,
        digital_area_mm2=digital.area_mm2,
        digital_power_uw=digital.power_uw,
        n_inputs=unary.n_inputs,
        n_tree_comparators=0,  # the unary architecture removes all tree comparators
        n_adc_comparators=n_adc_comparators,
    )


class DesignSpaceExplorer:
    """Brute-force exploration of the (depth, tau) hyperparameter grid.

    Parameters
    ----------
    training_sigma:
        Comparator offset sigma **in volts** assumed during training.  When
        positive (and ``robustness_weight > 0``), every grid point is
        trained offset-aware: the trainer's split scores carry the analytic
        expected-flip penalty at this sigma (normalized internally by the
        technology's supply voltage), so thresholds avoid dense sample
        regions and the resulting designs are inherently more
        offset-tolerant -- without spending extra hardware on it.
    robustness_weight:
        Weight of the expected-flip penalty in the trainer's split score
        (ignored while ``training_sigma`` is 0; default 1.0).
    engine:
        Inference engine used to score the test set at every grid point:
        ``"batch"`` (default) or ``"bitparallel"`` (packed-uint64 cube
        kernel, see :mod:`repro.core.bitkernel`).  Engines are bit-identical,
        so this is pure execution tuning -- it is *not* part of the
        experiment configuration or any cache key.
    ppa_backend:
        Source of every grid point's digital area/power (default: the
        analytic cell-count model; see :mod:`repro.circuits.ppa`).  Accepts
        anything :func:`~repro.circuits.ppa.resolve_ppa_backend` does.  The
        backend must be picklable when the sweep fans out across processes.
    """

    def __init__(
        self,
        technology: EGFETTechnology | None = None,
        resolution_bits: int = 4,
        depths: tuple[int, ...] = DEFAULT_DEPTHS,
        taus: tuple[float, ...] = DEFAULT_TAUS,
        seed: int = 0,
        training_sigma: float = 0.0,
        robustness_weight: float = 1.0,
        engine: str = "batch",
        ppa_backend=None,
    ):
        from repro.circuits.ppa import resolve_ppa_backend

        self.technology = technology if technology is not None else default_technology()
        self.resolution_bits = resolution_bits
        self.depths = tuple(depths)
        self.taus = tuple(taus)
        self.seed = seed
        if training_sigma < 0:
            raise ValueError("training_sigma must be >= 0")
        if robustness_weight < 0:
            raise ValueError("robustness_weight must be >= 0")
        self.training_sigma = training_sigma
        self.robustness_weight = robustness_weight
        self.engine = resolve_engine(engine)
        self.ppa_backend = resolve_ppa_backend(ppa_backend)
        if not self.depths or not self.taus:
            raise ValueError("the exploration grid must not be empty")

    def evaluate_point(
        self,
        X_train_levels: np.ndarray,
        y_train: np.ndarray,
        X_test_levels: np.ndarray,
        y_test: np.ndarray,
        n_classes: int,
        depth: int,
        tau: float,
        dataset_name: str = "",
    ) -> DesignPoint:
        """Train and cost one (depth, tau) combination."""
        trainer = ADCAwareTrainer(
            max_depth=depth,
            gini_threshold=tau,
            resolution_bits=self.resolution_bits,
            seed=self.seed,
            # The trainer works in normalized full-scale units; the explorer
            # speaks volts like every other sigma in the repository.
            training_sigma=self.training_sigma / self.technology.vdd,
            robustness_weight=(
                self.robustness_weight if self.training_sigma > 0 else 0.0
            ),
        )
        tree = trainer.fit(X_train_levels, y_train, n_classes)
        accuracy = evaluate_tree_accuracy(
            tree, X_test_levels, y_test, engine=self.engine
        )
        hardware = proposed_hardware_report(
            tree,
            self.technology,
            name=f"codesign[d={depth},tau={tau:g}]",
            ppa_backend=self.ppa_backend,
        )
        return DesignPoint(
            dataset=dataset_name,
            depth=depth,
            tau=tau,
            accuracy=accuracy,
            hardware=hardware,
            tree=tree,
        )

    def explore(
        self,
        X_train_levels: np.ndarray,
        y_train: np.ndarray,
        X_test_levels: np.ndarray,
        y_test: np.ndarray,
        n_classes: int,
        dataset_name: str = "",
        executor: Executor | None = None,
    ) -> list[DesignPoint]:
        """Evaluate the full depth x tau grid.

        Every training is independent (the paper parallelizes them across a
        server): each (depth, tau) point is submitted as one job to
        ``executor`` (default: in-process serial execution).  Because every
        job is seeded, serial and parallel runs return identical points in
        the same depth-major order.
        """
        executor = executor if executor is not None else SerialExecutor()
        tasks = [
            (
                self,
                X_train_levels,
                y_train,
                X_test_levels,
                y_test,
                n_classes,
                depth,
                tau,
                dataset_name,
            )
            for depth, tau in grid_points(self.depths, self.taus)
        ]
        return executor.map(_evaluate_point_job, tasks)

    def evaluate_robustness(
        self,
        points: list[DesignPoint],
        X_test: np.ndarray,
        y_test: np.ndarray,
        sigma_v: float,
        n_trials: int = 100,
        executor: Executor | None = None,
        store: ResultStore | None = None,
        test_size: float = 0.3,
    ) -> list[DesignPoint]:
        """Attach a comparator-offset Monte-Carlo summary to every point.

        Parameters
        ----------
        points:
            Nominal design points (any iterable order; preserved).
        X_test, y_test:
            *Analog* (normalized, unquantized) evaluation samples -- offsets
            shift the comparator thresholds in the continuous input domain.
        sigma_v:
            Comparator offset sigma in volts.
        n_trials:
            Monte-Carlo trials per design point.
        executor:
            Backend the per-point analyses fan out through (default serial).
            Every analysis is seeded with the explorer seed, so serial and
            parallel runs are bit-identical.
        store:
            Optional :class:`ResultStore`; per-point
            :class:`~repro.core.variation.VariationAnalysis` summaries are
            cached under the same per-seed variation keys that ``repro.cli
            variation`` uses, so either entry point reuses the other's work.
        test_size:
            Split fraction ``X_test`` was carved out with (0.3 under the
            paper's protocol).  Only participates in the cache keys, so
            analyses on non-default splits address distinct entries.

        Returns
        -------
        list[DesignPoint]
            The input points, in order, with ``robustness`` filled in.
        """
        executor = executor if executor is not None else SerialExecutor()
        analyses: dict[int, VariationAnalysis] = {}
        keys: dict[int, str] = {}
        pending: list[int] = []
        for index, point in enumerate(points):
            if store is not None:
                key = variation_result_key(
                    point.dataset,
                    self.seed,
                    sigma_v,
                    n_trials,
                    point.depth,
                    point.tau,
                    self.resolution_bits,
                    technology=self.technology,
                    test_size=test_size,
                    training_sigma=self.training_sigma,
                    robustness_weight=self.robustness_weight,
                )
                keys[index] = key
                cached = store.get(key)
                if cached is not None:
                    analyses[index] = cached
                    continue
            pending.append(index)

        if pending:
            tasks = [
                (
                    points[index].tree,
                    X_test,
                    y_test,
                    sigma_v,
                    n_trials,
                    self.technology,
                    self.seed,
                )
                for index in pending
            ]
            for index, analysis in zip(
                pending, executor.map(_robustness_point_job, tasks)
            ):
                analyses[index] = analysis
                if store is not None:
                    store.put(keys[index], analysis)

        return [point.with_robustness(analyses[i]) for i, point in enumerate(points)]


def _evaluate_point_job(
    explorer: DesignSpaceExplorer,
    X_train_levels: np.ndarray,
    y_train: np.ndarray,
    X_test_levels: np.ndarray,
    y_test: np.ndarray,
    n_classes: int,
    depth: int,
    tau: float,
    dataset_name: str,
) -> DesignPoint:
    """Picklable top-level job wrapper for :meth:`DesignSpaceExplorer.explore`."""
    return explorer.evaluate_point(
        X_train_levels,
        y_train,
        X_test_levels,
        y_test,
        n_classes,
        depth,
        tau,
        dataset_name,
    )


def _robustness_point_job(
    tree: DecisionTree,
    X_test: np.ndarray,
    y_test: np.ndarray,
    sigma_v: float,
    n_trials: int,
    technology: EGFETTechnology,
    seed: int,
) -> VariationAnalysis:
    """Picklable top-level job: Monte-Carlo one design point's robustness.

    Trial batches are *not* fanned out further (``jobs`` stays serial inside
    the job); the parallelism lives at the per-point level, where the grid is
    wide enough to keep every worker busy.
    """
    return simulate_offset_variation(
        tree, X_test, y_test, sigma_v, n_trials=n_trials,
        technology=technology, seed=seed,
    )


def select_best_design(
    points: list[DesignPoint],
    reference_accuracy: float,
    max_accuracy_loss: float,
    objective: str = "power",
    max_accuracy_drop: float | None = None,
) -> DesignPoint | None:
    """Pick the most hardware-efficient design meeting the accuracy constraint.

    Parameters
    ----------
    points:
        Evaluated design points.
    reference_accuracy:
        Accuracy of the baseline the loss is measured against.
    max_accuracy_loss:
        Maximum allowed absolute accuracy drop (0.0, 0.01 and 0.05 in the
        paper).
    objective:
        ``"power"`` (default, the binding constraint for self-powered
        operation) or ``"area"``.
    max_accuracy_drop:
        Optional robustness constraint: maximum allowed *mean* accuracy drop
        under comparator-offset variation.  Only points that carry a
        robustness summary (see
        :meth:`DesignSpaceExplorer.evaluate_robustness`) can satisfy it;
        points without one are treated as infeasible, so a constrained
        selection never silently picks an unanalyzed design.

    Returns
    -------
    DesignPoint | None
        The selected point, or ``None`` when no point satisfies the
        constraints.
    """
    if objective not in {"power", "area"}:
        raise ValueError("objective must be 'power' or 'area'")
    floor = reference_accuracy - max_accuracy_loss
    feasible = [point for point in points if point.accuracy >= floor - 1e-12]
    if max_accuracy_drop is not None:
        feasible = [
            point
            for point in feasible
            if point.mean_accuracy_drop is not None
            and point.mean_accuracy_drop <= max_accuracy_drop + 1e-12
        ]
    if not feasible:
        return None
    if objective == "power":

        def key(p: DesignPoint):
            return (p.hardware.total_power_uw, p.hardware.total_area_mm2)

    else:

        def key(p: DesignPoint):
            return (p.hardware.total_area_mm2, p.hardware.total_power_uw)

    return min(feasible, key=key)
