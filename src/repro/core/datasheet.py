"""Datasheet generation for a co-designed printed classifier.

A "datasheet" collects, in one text document, everything a system integrator
needs about a generated classifier: the model summary, the per-input bespoke
ADC specification (retained reference levels and voltages), the digital label
logic size, area/power breakdown, timing against the sampling period, and the
self-power verdict.  It is the human-readable companion of the Verilog/DOT
artifacts produced by :mod:`repro.circuits.verilog` and
:mod:`repro.mltrees.render`.
"""

from __future__ import annotations

import numpy as np

from repro.core.bespoke_adc import build_bespoke_adcs
from repro.core.exploration import proposed_hardware_report
from repro.core.power_budget import analyze_self_power
from repro.core.unary_tree import UnaryDecisionTree
from repro.mltrees.evaluation import accuracy_score
from repro.mltrees.tree import DecisionTree
from repro.pdk.egfet import EGFETTechnology, default_technology


def generate_datasheet(
    tree: DecisionTree,
    name: str = "printed classifier",
    technology: EGFETTechnology | None = None,
    feature_names: list[str] | None = None,
    class_names: list[str] | None = None,
    X_test: np.ndarray | None = None,
    y_test: np.ndarray | None = None,
    ppa_backend=None,
) -> str:
    """Render a complete text datasheet for a trained, co-designed tree.

    Parameters
    ----------
    tree:
        The trained (quantized) decision tree to implement.
    name:
        Title of the datasheet.
    technology:
        EGFET technology used for costing (defaults to the calibrated PDK).
    feature_names, class_names:
        Optional labels used throughout the document.
    X_test, y_test:
        Optional normalized evaluation set; when given, the measured accuracy
        is included.
    ppa_backend:
        Source of the digital area/power/timing numbers (default: the
        analytic estimators; see :mod:`repro.circuits.ppa`).  With a
        :class:`~repro.circuits.ppa.ReportPPABackend`, the datasheet quotes
        the external flow's measured costs instead.
    """
    # Imported here to keep repro.core free of an import-time dependency on
    # repro.analysis (which itself imports repro.core for the result types).
    from repro.analysis.render import render_table
    from repro.circuits.ppa import resolve_ppa_backend

    technology = technology if technology is not None else default_technology()
    backend = resolve_ppa_backend(ppa_backend)
    unary = UnaryDecisionTree(tree)
    hardware = proposed_hardware_report(
        tree, technology, name=name, ppa_backend=backend
    )
    self_power = analyze_self_power(hardware, technology)
    netlist = unary.to_netlist("label_logic")
    timing = backend.timing(netlist, technology)
    adcs = build_bespoke_adcs(unary, technology, feature_names=feature_names)

    lines: list[str] = []
    lines.append(f"DATASHEET -- {name}")
    lines.append("=" * (13 + len(name)))
    lines.append("")

    # ------------------------------------------------------------------ #
    # model summary
    # ------------------------------------------------------------------ #
    lines.append("Model")
    lines.append("-----")
    lines.append(f"decision tree, depth {tree.depth}, {tree.n_decision_nodes} decision "
                 f"nodes, {tree.n_leaves} leaves, {tree.n_classes} classes, "
                 f"{tree.resolution_bits}-bit quantized inputs")
    if class_names:
        lines.append(f"classes: {', '.join(class_names[:tree.n_classes])}")
    if X_test is not None and y_test is not None:
        accuracy = accuracy_score(np.asarray(y_test), tree.predict(np.asarray(X_test)))
        lines.append(f"test accuracy: {accuracy * 100:.1f} %")
    lines.append("")

    # ------------------------------------------------------------------ #
    # analog front end
    # ------------------------------------------------------------------ #
    lines.append("Bespoke ADC front end")
    lines.append("---------------------")
    n_levels = 2 ** tree.resolution_bits
    adc_rows = []
    for feature, adc in adcs.items():
        taps = ", ".join(f"{level}/{n_levels}" for level in adc.retained_levels)
        adc_rows.append(
            (adc.feature_name or f"I{feature}", adc.label, taps,
             adc.area_mm2, adc.power_uw)
        )
    if adc_rows:
        lines.append(render_table(
            ["input", "type", "retained thresholds (xVdd)", "area (mm2)", "power (uW)"],
            adc_rows,
        ))
    else:
        lines.append("(the tree uses no input feature; no ADC channel required)")
    lines.append("")

    # ------------------------------------------------------------------ #
    # digital label logic
    # ------------------------------------------------------------------ #
    lines.append("Digital label logic (two-level, parallel unary)")
    lines.append("-----------------------------------------------")
    histogram = dict(sorted(netlist.cell_histogram().items()))
    lines.append(f"{netlist.n_gates} cells: {histogram}")
    lines.append(f"critical path: {timing.critical_path_delay_ms:.1f} ms over "
                 f"{timing.logic_depth} cells "
                 f"({'meets' if timing.meets_timing else 'VIOLATES'} the "
                 f"{timing.sampling_period_ms:.0f} ms sampling period at "
                 f"{technology.frequency_hz:.0f} Hz)")
    lines.append("")

    # ------------------------------------------------------------------ #
    # cost and power budget
    # ------------------------------------------------------------------ #
    lines.append("Area / power")
    lines.append("------------")
    lines.append(render_table(
        ["block", "area (mm2)", "power (mW)"],
        [
            ("bespoke ADCs", hardware.adc_area_mm2, hardware.adc_power_mw),
            ("label logic", hardware.digital_area_mm2, hardware.digital_power_mw),
            ("total classifier", hardware.total_area_mm2, hardware.total_power_mw),
            ("printed sensors", 0.0, self_power.sensor_power_mw),
            ("complete system", hardware.total_area_mm2, self_power.total_power_mw),
        ],
    ))
    lines.append("")
    lines.append(f"self-power: {'YES' if self_power.is_self_powered else 'NO'} "
                 f"({self_power.total_power_mw:.3f} mW of the "
                 f"{self_power.harvester_budget_mw:.1f} mW harvester budget, "
                 f"{self_power.utilization * 100:.0f}% utilization)")
    lines.append("")
    lines.append(f"technology: {technology.name}, Vdd {technology.vdd:g} V, "
                 f"{technology.frequency_hz:g} Hz")
    return "\n".join(lines) + "\n"
