"""Parallel unary decision-tree architecture (Section III-A, Fig. 2).

Once the inputs are available as parallel unary digits, every comparison
``x[feature] >= C`` of a bespoke decision tree collapses into reading one
unary digit ``I_feature[k]`` (Eq. (2)), so the whole classifier becomes a
set of two-level AND-OR functions -- one per class label -- over those
digits.  :class:`UnaryDecisionTree` performs that translation for a trained
:class:`~repro.mltrees.tree.DecisionTree`:

* it derives the unary digits each input feature must provide (which is what
  the bespoke ADC generator consumes),
* it builds the minimized sum-of-products label logic,
* it synthesizes the label logic into a gate-level netlist for costing and
  equivalence checking,
* it predicts classes either from raw samples, from quantized levels, or from
  the digit dictionaries produced by a :class:`~repro.adc.frontend.BespokeFrontEnd`.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.adc.thermometer import quantize_array_to_levels
from repro.circuits.area_power import AreaPowerReport, estimate_netlist
from repro.circuits.netlist import Netlist
from repro.circuits.synthesis import synthesize_sop
from repro.circuits.two_level import Literal, SumOfProducts
from repro.mltrees.export import tree_to_paths
from repro.mltrees.tree import DecisionTree
from repro.pdk.egfet import EGFETTechnology


def digit_variable(feature: int, level: int) -> str:
    """Canonical variable name of unary digit ``level`` of input ``feature``."""
    return f"I{feature}_u{level}"


class UnaryDecisionTree:
    """A trained decision tree expressed in the parallel unary architecture."""

    def __init__(self, tree: DecisionTree):
        self.tree = tree
        self.resolution_bits = tree.resolution_bits
        self.n_classes = tree.n_classes
        #: per used feature, the sorted unary-digit levels the logic consumes
        self.required_digits: dict[int, tuple[int, ...]] = tree.required_levels()
        self._label_logic = self._build_label_logic()
        self._batch_logic = self._compile_batch_logic()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build_label_logic(self) -> dict[int, SumOfProducts]:
        """Build the minimized two-level AND-OR function of every class label.

        Each root-to-leaf path contributes one product term: the right-branch
        condition ``x >= k`` maps to the positive literal ``I_f[k]`` and the
        left-branch condition ``x < k`` to its complement (Fig. 2b).
        """
        logic: dict[int, SumOfProducts] = {
            label: SumOfProducts() for label in range(self.n_classes)
        }
        for path in tree_to_paths(self.tree):
            term = [
                Literal(digit_variable(cond.feature, cond.level), positive=cond.is_ge)
                for cond in path.conditions
            ]
            logic[path.prediction].add_term(term)
        return {label: sop.minimized() for label, sop in logic.items()}

    def _compile_batch_logic(self) -> "_BatchLabelLogic":
        """Compile the label logic for whole-matrix evaluation."""
        return _BatchLabelLogic(
            comparators=self.comparators,
            digit_index={name: i for i, name in enumerate(self.digit_variables())},
            label_logic=self._label_logic,
            n_classes=self.n_classes,
        )

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    @property
    def label_logic(self) -> dict[int, SumOfProducts]:
        """Minimized sum-of-products per class label."""
        return dict(self._label_logic)

    @property
    def used_features(self) -> tuple[int, ...]:
        """Input features that need an ADC channel."""
        return tuple(sorted(self.required_digits))

    @property
    def n_inputs(self) -> int:
        """Number of used input features (``#Inputs``)."""
        return len(self.required_digits)

    @property
    def n_unary_digits(self) -> int:
        """Total number of distinct unary digits consumed by the logic.

        This equals the total number of comparators the bespoke ADC front end
        must retain.
        """
        return sum(len(levels) for levels in self.required_digits.values())

    def digit_variables(self) -> list[str]:
        """All digit variable names, sorted by feature then level."""
        return [
            digit_variable(feature, level)
            for feature in sorted(self.required_digits)
            for level in self.required_digits[feature]
        ]

    @property
    def comparators(self) -> tuple[tuple[int, int], ...]:
        """``(feature, level)`` of every retained comparator, in digit order.

        The order matches :meth:`digit_variables` and is the column order of
        every digit matrix the batch prediction path consumes.
        """
        return tuple(
            (feature, level)
            for feature in sorted(self.required_digits)
            for level in self.required_digits[feature]
        )

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def _digits_from_levels(self, levels) -> dict[str, bool]:
        """Expand quantized levels into the digit-variable assignment."""
        assignment: dict[str, bool] = {}
        for feature, required in self.required_digits.items():
            value = int(levels[feature])
            for level in required:
                assignment[digit_variable(feature, level)] = value >= level
        return assignment

    def predict_one_level(self, levels) -> int:
        """Predict the class of one quantized sample through the unary logic."""
        assignment = self._digits_from_levels(levels)
        return self.predict_from_assignment(assignment)

    def predict_from_assignment(self, assignment: Mapping[str, bool]) -> int:
        """Predict from a digit-variable truth assignment.

        Exactly one label function evaluates true for any assignment that is
        consistent with a thermometer code; if several are true (possible
        only for inconsistent assignments), the lowest label wins, and if
        none is true a ``ValueError`` is raised.
        """
        winners = [
            label
            for label, sop in self._label_logic.items()
            if sop.evaluate(assignment)
        ]
        if not winners:
            raise ValueError(
                "no label function fired; the digit assignment is inconsistent "
                "with a thermometer code"
            )
        return min(winners)

    def predict_from_digits(self, digits: Mapping[int, Mapping[int, int]]) -> int:
        """Predict from the per-feature digit dictionaries of a bespoke front end."""
        assignment = {
            digit_variable(feature, level): bool(bit)
            for feature, per_level in digits.items()
            for level, bit in per_level.items()
        }
        return self.predict_from_assignment(assignment)

    # ------------------------------------------------------------------ #
    # batched prediction
    # ------------------------------------------------------------------ #
    def digit_matrix_from_levels(self, X_levels: np.ndarray) -> np.ndarray:
        """Comparator outputs of a whole quantized-sample matrix at once.

        One broadcast compare replaces the per-sample dict assignment: column
        ``c`` of the result is ``X_levels[:, feature_c] >= level_c`` for the
        retained comparator ``c`` (column order = :attr:`comparators`).
        """
        X_levels = np.asarray(X_levels)
        if X_levels.ndim != 2:
            raise ValueError("expected a 2-D matrix of quantized samples")
        return self._batch_logic.digits_from_levels(X_levels)

    def predict_digit_matrix(self, digits: np.ndarray) -> np.ndarray:
        """Predict classes from an ``(n_samples, n_unary_digits)`` digit matrix.

        Columns follow :attr:`comparators`.  Raises ``ValueError`` when any
        row fires no label function (inconsistent with a thermometer code),
        mirroring :meth:`predict_from_assignment`.
        """
        return self._batch_logic.predict(np.asarray(digits, dtype=bool))

    def predict_levels(self, X_levels: np.ndarray) -> np.ndarray:
        """Predict classes for a matrix of quantized samples (vectorized)."""
        return self.predict_digit_matrix(self.digit_matrix_from_levels(X_levels))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict classes for raw normalized samples in ``[0, 1]``."""
        levels = quantize_array_to_levels(np.asarray(X, dtype=float), self.resolution_bits)
        return self.predict_levels(levels)

    def predict_from_digits_batch(
        self, digits: Mapping[int, Mapping[int, np.ndarray]]
    ) -> np.ndarray:
        """Predict from per-feature digit *vectors* of a bespoke front end.

        Batch counterpart of :meth:`predict_from_digits`: every
        ``digits[feature][level]`` holds one value per sample (the output of
        :meth:`~repro.adc.frontend.BespokeFrontEnd.convert_batch`).
        """
        columns = [
            np.asarray(digits[feature][level], dtype=bool)
            for feature, level in self.comparators
        ]
        if not columns:
            raise ValueError("predict_from_digits_batch needs at least one digit vector")
        return self.predict_digit_matrix(np.column_stack(columns))

    # ------------------------------------------------------------------ #
    # hardware
    # ------------------------------------------------------------------ #
    def class_output(self, label: int) -> str:
        """Primary-output net name of a class label."""
        return f"class_{label}"

    def to_netlist(self, name: str = "unary_tree") -> Netlist:
        """Synthesize the label logic into a gate-level netlist.

        Primary inputs are the required unary digits; primary outputs are the
        one-hot class signals.
        """
        netlist = Netlist(name)
        variable_nets = {
            variable: netlist.add_input(variable) for variable in self.digit_variables()
        }
        inverted: dict[str, str] = {}
        for label in range(self.n_classes):
            sop = self._label_logic[label]
            output = synthesize_sop(netlist, sop, variable_nets, inverted)
            target = self.class_output(label)
            netlist.add_gate("BUF", [output], output=target)
            netlist.add_output(target)
        netlist.validate()
        return netlist

    def digital_report(
        self, technology: EGFETTechnology, ppa_backend=None
    ) -> AreaPowerReport:
        """Area/power of the synthesized two-level label logic.

        ``ppa_backend`` selects the costing source (default: the analytic
        cell-count model; see :mod:`repro.circuits.ppa`).
        """
        if ppa_backend is None:
            return estimate_netlist(self.to_netlist(), technology)
        from repro.circuits.ppa import resolve_ppa_backend

        return resolve_ppa_backend(ppa_backend).area_power(
            self.to_netlist(), technology
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UnaryDecisionTree(inputs={self.n_inputs}, "
            f"unary_digits={self.n_unary_digits}, classes={self.n_classes})"
        )


class _BatchLabelLogic:
    """Label logic compiled into index arrays for whole-matrix evaluation.

    Each product term of each label's sum-of-products becomes two column
    index arrays (positive / negated literals) into the digit matrix, so one
    term evaluates as ``digits[:, pos].all(1) & (~digits[:, neg]).all(1)``
    over every sample simultaneously and a label fires where any of its
    terms does.  The winner per row is the lowest firing label -- identical
    to the scalar :meth:`UnaryDecisionTree.predict_from_assignment` rule.
    """

    def __init__(
        self,
        comparators: tuple[tuple[int, int], ...],
        digit_index: dict[str, int],
        label_logic: Mapping[int, SumOfProducts],
        n_classes: int,
    ):
        self.features = np.array([feature for feature, _ in comparators], dtype=np.intp)
        self.levels = np.array([level for _, level in comparators], dtype=np.int64)
        self.n_classes = n_classes
        #: per label, per term: (positive column indices, negated column indices)
        self.terms: list[list[tuple[np.ndarray, np.ndarray]]] = []
        for label in range(n_classes):
            compiled: list[tuple[np.ndarray, np.ndarray]] = []
            for term in label_logic[label].terms:
                positive = [digit_index[lit.name] for lit in term if lit.positive]
                negated = [digit_index[lit.name] for lit in term if not lit.positive]
                compiled.append(
                    (
                        np.array(sorted(positive), dtype=np.intp),
                        np.array(sorted(negated), dtype=np.intp),
                    )
                )
            self.terms.append(compiled)

    def digits_from_levels(self, X_levels: np.ndarray) -> np.ndarray:
        """Broadcast compare: digit ``(f, k)`` is ``X_levels[:, f] >= k``."""
        return X_levels[:, self.features] >= self.levels[np.newaxis, :]

    def fired_matrix(self, digits: np.ndarray) -> np.ndarray:
        """``(n_samples, n_classes)`` boolean matrix of firing label functions."""
        n_samples = digits.shape[0]
        fired = np.zeros((n_samples, self.n_classes), dtype=bool)
        for label, compiled in enumerate(self.terms):
            column = fired[:, label]
            for positive, negated in compiled:
                term_value = digits[:, positive].all(axis=1)
                if negated.size:
                    term_value &= ~digits[:, negated].any(axis=1)
                column |= term_value
        return fired

    def predict(self, digits: np.ndarray) -> np.ndarray:
        """Lowest firing label per row; raises when a row fires none."""
        fired = self.fired_matrix(digits)
        if not fired.any(axis=1).all():
            raise ValueError(
                "no label function fired; the digit assignment is inconsistent "
                "with a thermometer code"
            )
        return np.argmax(fired, axis=1).astype(np.int64)
