"""Parallel unary decision-tree architecture (Section III-A, Fig. 2).

Once the inputs are available as parallel unary digits, every comparison
``x[feature] >= C`` of a bespoke decision tree collapses into reading one
unary digit ``I_feature[k]`` (Eq. (2)), so the whole classifier becomes a
set of two-level AND-OR functions -- one per class label -- over those
digits.  :class:`UnaryDecisionTree` performs that translation for a trained
:class:`~repro.mltrees.tree.DecisionTree`:

* it derives the unary digits each input feature must provide (which is what
  the bespoke ADC generator consumes),
* it builds the minimized sum-of-products label logic,
* it synthesizes the label logic into a gate-level netlist for costing and
  equivalence checking,
* it predicts classes either from raw samples, from quantized levels, or from
  the digit dictionaries produced by a :class:`~repro.adc.frontend.BespokeFrontEnd`.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.adc.thermometer import quantize_array_to_levels
from repro.circuits.area_power import AreaPowerReport, estimate_netlist
from repro.circuits.netlist import Netlist
from repro.circuits.synthesis import synthesize_sop
from repro.circuits.two_level import Literal, SumOfProducts
from repro.mltrees.export import tree_to_paths
from repro.mltrees.tree import DecisionTree
from repro.pdk.egfet import EGFETTechnology


def digit_variable(feature: int, level: int) -> str:
    """Canonical variable name of unary digit ``level`` of input ``feature``."""
    return f"I{feature}_u{level}"


class UnaryDecisionTree:
    """A trained decision tree expressed in the parallel unary architecture."""

    def __init__(self, tree: DecisionTree):
        self.tree = tree
        self.resolution_bits = tree.resolution_bits
        self.n_classes = tree.n_classes
        #: per used feature, the sorted unary-digit levels the logic consumes
        self.required_digits: dict[int, tuple[int, ...]] = tree.required_levels()
        self._label_logic = self._build_label_logic()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build_label_logic(self) -> dict[int, SumOfProducts]:
        """Build the minimized two-level AND-OR function of every class label.

        Each root-to-leaf path contributes one product term: the right-branch
        condition ``x >= k`` maps to the positive literal ``I_f[k]`` and the
        left-branch condition ``x < k`` to its complement (Fig. 2b).
        """
        logic: dict[int, SumOfProducts] = {
            label: SumOfProducts() for label in range(self.n_classes)
        }
        for path in tree_to_paths(self.tree):
            term = [
                Literal(digit_variable(cond.feature, cond.level), positive=cond.is_ge)
                for cond in path.conditions
            ]
            logic[path.prediction].add_term(term)
        return {label: sop.minimized() for label, sop in logic.items()}

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    @property
    def label_logic(self) -> dict[int, SumOfProducts]:
        """Minimized sum-of-products per class label."""
        return dict(self._label_logic)

    @property
    def used_features(self) -> tuple[int, ...]:
        """Input features that need an ADC channel."""
        return tuple(sorted(self.required_digits))

    @property
    def n_inputs(self) -> int:
        """Number of used input features (``#Inputs``)."""
        return len(self.required_digits)

    @property
    def n_unary_digits(self) -> int:
        """Total number of distinct unary digits consumed by the logic.

        This equals the total number of comparators the bespoke ADC front end
        must retain.
        """
        return sum(len(levels) for levels in self.required_digits.values())

    def digit_variables(self) -> list[str]:
        """All digit variable names, sorted by feature then level."""
        return [
            digit_variable(feature, level)
            for feature in sorted(self.required_digits)
            for level in self.required_digits[feature]
        ]

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def _digits_from_levels(self, levels) -> dict[str, bool]:
        """Expand quantized levels into the digit-variable assignment."""
        assignment: dict[str, bool] = {}
        for feature, required in self.required_digits.items():
            value = int(levels[feature])
            for level in required:
                assignment[digit_variable(feature, level)] = value >= level
        return assignment

    def predict_one_level(self, levels) -> int:
        """Predict the class of one quantized sample through the unary logic."""
        assignment = self._digits_from_levels(levels)
        return self.predict_from_assignment(assignment)

    def predict_from_assignment(self, assignment: Mapping[str, bool]) -> int:
        """Predict from a digit-variable truth assignment.

        Exactly one label function evaluates true for any assignment that is
        consistent with a thermometer code; if several are true (possible
        only for inconsistent assignments), the lowest label wins, and if
        none is true a ``ValueError`` is raised.
        """
        winners = [
            label
            for label, sop in self._label_logic.items()
            if sop.evaluate(assignment)
        ]
        if not winners:
            raise ValueError(
                "no label function fired; the digit assignment is inconsistent "
                "with a thermometer code"
            )
        return min(winners)

    def predict_from_digits(self, digits: Mapping[int, Mapping[int, int]]) -> int:
        """Predict from the per-feature digit dictionaries of a bespoke front end."""
        assignment = {
            digit_variable(feature, level): bool(bit)
            for feature, per_level in digits.items()
            for level, bit in per_level.items()
        }
        return self.predict_from_assignment(assignment)

    def predict_levels(self, X_levels: np.ndarray) -> np.ndarray:
        """Predict classes for a matrix of quantized samples."""
        X_levels = np.asarray(X_levels)
        return np.array(
            [self.predict_one_level(row) for row in X_levels], dtype=np.int64
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict classes for raw normalized samples in ``[0, 1]``."""
        levels = quantize_array_to_levels(np.asarray(X, dtype=float), self.resolution_bits)
        return self.predict_levels(levels)

    # ------------------------------------------------------------------ #
    # hardware
    # ------------------------------------------------------------------ #
    def class_output(self, label: int) -> str:
        """Primary-output net name of a class label."""
        return f"class_{label}"

    def to_netlist(self, name: str = "unary_tree") -> Netlist:
        """Synthesize the label logic into a gate-level netlist.

        Primary inputs are the required unary digits; primary outputs are the
        one-hot class signals.
        """
        netlist = Netlist(name)
        variable_nets = {
            variable: netlist.add_input(variable) for variable in self.digit_variables()
        }
        inverted: dict[str, str] = {}
        for label in range(self.n_classes):
            sop = self._label_logic[label]
            output = synthesize_sop(netlist, sop, variable_nets, inverted)
            target = self.class_output(label)
            netlist.add_gate("BUF", [output], output=target)
            netlist.add_output(target)
        netlist.validate()
        return netlist

    def digital_report(self, technology: EGFETTechnology) -> AreaPowerReport:
        """Area/power of the synthesized two-level label logic."""
        return estimate_netlist(self.to_netlist(), technology)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UnaryDecisionTree(inputs={self.n_inputs}, "
            f"unary_digits={self.n_unary_digits}, classes={self.n_classes})"
        )
