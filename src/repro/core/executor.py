"""Experiment execution backends: serial and process-parallel job fan-out.

The co-design flow is embarrassingly parallel at two levels: the depth x tau
grid of :class:`~repro.core.exploration.DesignSpaceExplorer` (49 independent
trainings per benchmark with the paper's grid) and the per-dataset runs of
:func:`~repro.analysis.experiments.run_benchmark_suite` (eight independent
benchmarks).  Both submit their jobs through the small :class:`Executor`
abstraction defined here, so callers pick the backend once:

* :class:`SerialExecutor` -- run jobs in-process, in submission order.  The
  default everywhere; zero overhead and trivially deterministic.
* :class:`ParallelExecutor` -- fan jobs out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with ``jobs`` workers.

Because every job is a pure function of its arguments (all trainers are
seeded), both backends produce **bit-identical results in the same order**;
only the wall-clock changes.  Jobs must be picklable: module-level functions
with picklable arguments.

Examples
--------
>>> from repro.core.executor import get_executor
>>> with get_executor(jobs=4) as executor:
...     results = executor.map(some_module_level_fn, [(arg1a, arg2a), (arg1b, arg2b)])
"""

from __future__ import annotations

import abc
import os
import warnings
from collections.abc import Callable, Iterable, Sequence


class Executor(abc.ABC):
    """Runs a batch of independent jobs and returns results in order.

    A *job* is ``(fn, args)`` with ``fn`` a module-level callable; ``map``
    applies ``fn`` to every argument tuple and returns the results in the
    submission order regardless of completion order, so serial and parallel
    backends are interchangeable.
    """

    #: Number of worker processes the backend uses (1 for serial).
    jobs: int = 1

    @abc.abstractmethod
    def map(self, fn: Callable, tasks: Iterable[Sequence]) -> list:
        """Apply ``fn`` to every argument tuple in ``tasks``, in order."""

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process executor: runs every job sequentially."""

    jobs = 1

    def map(self, fn: Callable, tasks: Iterable[Sequence]) -> list:
        """Run ``fn(*args)`` for every argument tuple, in order."""
        return [fn(*args) for args in tasks]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Process-pool executor fanning jobs out over ``jobs`` workers.

    Results are returned in submission order.  When the platform cannot
    start a process pool (some sandboxes lack semaphore support), the
    executor degrades to serial execution with a warning instead of
    failing, so scripted runs keep working everywhere.

    Parameters
    ----------
    jobs:
        Number of worker processes.  ``None`` or ``0`` selects
        ``os.cpu_count()``.
    """

    def __init__(self, jobs: int | None = None):
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise ValueError("jobs must be a positive worker count (or 0 for auto)")
        self.jobs = jobs
        self._pool = None
        self._fallback = None

    def _ensure_pool(self):
        if self._pool is None and self._fallback is None:
            from concurrent.futures import ProcessPoolExecutor

            try:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            except (OSError, ImportError, NotImplementedError) as exc:
                warnings.warn(
                    f"cannot start a process pool ({exc!r}); "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self._fallback = SerialExecutor()
        return self._pool

    def map(self, fn: Callable, tasks: Iterable[Sequence]) -> list:
        """Run ``fn(*args)`` for every argument tuple across the pool."""
        pool = self._ensure_pool()
        if pool is None:
            return self._fallback.map(fn, tasks)
        futures = [pool.submit(fn, *args) for args in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(jobs={self.jobs})"


def get_executor(jobs: int | None = None) -> Executor:
    """Build the executor matching a ``--jobs`` CLI value.

    ``None`` or ``1`` selects the :class:`SerialExecutor`; any other value
    (including ``0`` for "one worker per CPU") selects a
    :class:`ParallelExecutor`.
    """
    if jobs is None or jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)
