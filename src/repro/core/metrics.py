"""Hardware/accuracy report records and reduction arithmetic.

Every evaluated classifier implementation -- the baseline [2], the
ADC-unaware unary design (Fig. 4), the fully co-designed classifiers
(Fig. 5 / Table II) and the approximate baseline [7] -- is summarized by a
:class:`HardwareReport` (cost) wrapped in a :class:`ClassifierDesign`
(cost + model quality).  The reduction helpers implement the two ways the
paper reports gains: multiplicative factors ("8.6x lower area") and
percentages ("11 % area reduction").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class HardwareReport:
    """Area/power summary of one classifier implementation.

    All areas are mm^2, all powers are uW (printed classifiers sit in the
    uW-to-mW range; converting to mW happens only at presentation time).

    Attributes
    ----------
    name:
        Implementation label (e.g. ``"baseline[2]"`` or ``"codesign tau=0.01"``).
    adc_area_mm2 / adc_power_uw:
        Analog front-end cost (all ADC channels plus any shared encoder).
    digital_area_mm2 / digital_power_uw:
        Decision-tree logic cost.
    n_inputs:
        Number of input features that need an ADC channel (``#Inputs``).
    n_tree_comparators:
        Number of comparison nodes in the tree (``#Comp.`` of Table I for the
        baseline; the proposed unary trees have none in hardware).
    n_adc_comparators:
        Total analog comparators across all ADC channels.
    """

    name: str
    adc_area_mm2: float
    adc_power_uw: float
    digital_area_mm2: float
    digital_power_uw: float
    n_inputs: int
    n_tree_comparators: int
    n_adc_comparators: int

    # ------------------------------------------------------------------ #
    # totals
    # ------------------------------------------------------------------ #
    @property
    def total_area_mm2(self) -> float:
        """ADC + digital area."""
        return self.adc_area_mm2 + self.digital_area_mm2

    @property
    def total_power_uw(self) -> float:
        """ADC + digital power in uW."""
        return self.adc_power_uw + self.digital_power_uw

    @property
    def total_power_mw(self) -> float:
        """ADC + digital power in mW."""
        return self.total_power_uw / 1000.0

    @property
    def adc_power_mw(self) -> float:
        """ADC power in mW."""
        return self.adc_power_uw / 1000.0

    @property
    def digital_power_mw(self) -> float:
        """Digital power in mW."""
        return self.digital_power_uw / 1000.0

    # ------------------------------------------------------------------ #
    # shares (the "40 % of area / 74 % of power is ADCs" analysis)
    # ------------------------------------------------------------------ #
    @property
    def adc_area_fraction(self) -> float:
        """Fraction of the total area spent on ADCs."""
        total = self.total_area_mm2
        return self.adc_area_mm2 / total if total > 0 else 0.0

    @property
    def adc_power_fraction(self) -> float:
        """Fraction of the total power spent on ADCs."""
        total = self.total_power_uw
        return self.adc_power_uw / total if total > 0 else 0.0


@dataclass(frozen=True)
class ClassifierDesign:
    """A trained classifier together with its hardware implementation cost.

    Attributes
    ----------
    name:
        Design label.
    dataset:
        Benchmark the classifier was trained on.
    accuracy:
        Test-set classification accuracy in ``[0, 1]``.
    hardware:
        Hardware cost report.
    depth:
        Depth of the decision tree.
    tau:
        Gini tolerance used during training (0 for ADC-unaware training).
    """

    name: str
    dataset: str
    accuracy: float
    hardware: HardwareReport
    depth: int
    tau: float = 0.0
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ReductionReport:
    """Gains of a proposed design over a reference design."""

    reference: str
    proposed: str
    area_factor: float
    power_factor: float
    area_percent: float
    power_percent: float


def reduction_factor(reference: float, proposed: float) -> float:
    """Multiplicative reduction ``reference / proposed`` ("N x lower")."""
    if reference < 0 or proposed < 0:
        raise ValueError("costs must be non-negative")
    if proposed == 0:
        return float("inf")
    return reference / proposed


def reduction_percent(reference: float, proposed: float) -> float:
    """Relative reduction ``(reference - proposed) / reference`` in percent."""
    if reference < 0 or proposed < 0:
        raise ValueError("costs must be non-negative")
    if reference == 0:
        return 0.0
    return (reference - proposed) / reference * 100.0


def compare_designs(reference: HardwareReport, proposed: HardwareReport) -> ReductionReport:
    """Summarize the area/power gains of ``proposed`` over ``reference``."""
    return ReductionReport(
        reference=reference.name,
        proposed=proposed.name,
        area_factor=reduction_factor(reference.total_area_mm2, proposed.total_area_mm2),
        power_factor=reduction_factor(reference.total_power_uw, proposed.total_power_uw),
        area_percent=reduction_percent(reference.total_area_mm2, proposed.total_area_mm2),
        power_percent=reduction_percent(reference.total_power_uw, proposed.total_power_uw),
    )
