"""Process-variation modeling for printed comparators.

Printed EGFET devices exhibit large process variability, so a realistic
bespoke ADC must tolerate random comparator input-offset voltages: a
comparator nominally referenced at ``k / 2**N * Vdd`` actually trips at that
voltage plus a device-specific offset.  This module provides a Monte-Carlo
analysis of how such offsets propagate through the unary decision tree to
classification accuracy -- the variability extension the paper leaves to
future work, useful for deciding how much offset the printed comparator
design needs to guarantee.

The evaluation is fully vectorized: one ``(n_trials, n_comparators)`` offset
matrix is broadcast against the per-comparator thresholds, so every
Monte-Carlo trial and every sample is a single boolean-array comparison plus
one batched label-logic pass (no per-sample Python loops).  Trial batches
optionally fan out across worker processes through
:class:`~repro.core.executor.Executor` -- results are bit-identical either
way because all offsets are drawn up front from one seeded stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.executor import get_executor
from repro.core.store import make_key
from repro.core.unary_tree import UnaryDecisionTree
from repro.mltrees.evaluation import accuracy_score
from repro.mltrees.split_search import normal_cdf
from repro.mltrees.tree import DecisionTree
from repro.pdk.egfet import EGFETTechnology, default_technology


@dataclass(frozen=True)
class ComparatorOffsetModel:
    """Gaussian input-offset model for printed comparators.

    Attributes
    ----------
    sigma_v:
        Standard deviation of the comparator input offset, in volts.
    mean_v:
        Systematic offset component, in volts (0 for a centered process).
    """

    sigma_v: float
    mean_v: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma_v < 0:
            raise ValueError("offset sigma must be >= 0")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` comparator offsets in volts."""
        if self.sigma_v == 0:
            return np.full(size, self.mean_v)
        return rng.normal(self.mean_v, self.sigma_v, size=size)

    def sample_matrix(
        self, rng: np.random.Generator, n_trials: int, size: int
    ) -> np.ndarray:
        """Draw an ``(n_trials, size)`` offset matrix, one row per trial.

        Rows are drawn sequentially with :meth:`sample` so the random stream
        is consumed exactly as the historical per-trial loop consumed it:
        ``sample_matrix(rng, t, c)[i]`` equals the ``i``-th of ``t``
        successive ``sample(rng, c)`` calls, which keeps seeded analyses
        bit-identical to the pre-vectorization implementation.
        """
        return np.stack([self.sample(rng, size) for _ in range(n_trials)])

    def flip_probability(self, margins: np.ndarray, vdd: float = 1.0) -> np.ndarray:
        """Analytic probability that a comparator digit flips, per margin.

        A comparator with nominal (normalized) threshold ``t`` sees a sample
        at value ``v``; its margin is ``m = v - t``.  The nominal digit is
        ``m >= 0`` and the offset-afflicted digit is ``m >= o / vdd``, so the
        digit flips exactly when the normalized offset ``o / vdd`` crosses
        the margin:

        * ``m >= 0``: flip iff ``o / vdd > m``, probability
          ``1 - Phi((m - mu) / s)``;
        * ``m < 0``: flip iff ``o / vdd <= m``, probability
          ``Phi((m - mu) / s)``

        with ``mu = mean_v / vdd`` and ``s = sigma_v / vdd``.  For the
        centered model (``mean_v = 0``) this collapses to
        ``Phi(-|m| * vdd / sigma_v)`` -- monotone in ``sigma_v``, symmetric
        in the margin sign, and exactly ``0`` at ``sigma_v = 0``.

        Parameters
        ----------
        margins:
            Margins in *normalized* full-scale units (any shape).
        vdd:
            Supply (full-scale) voltage converting the volt-domain offset
            statistics into normalized units.

        Returns
        -------
        np.ndarray
            Flip probabilities, same shape as ``margins``.
        """
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        margins = np.asarray(margins, dtype=float)
        mean = self.mean_v / vdd
        nominal_digit = margins >= 0
        if self.sigma_v == 0:
            # Deterministic offset `mean`: the flip is certain or impossible.
            offset_digit = margins >= mean
            return (nominal_digit != offset_digit).astype(float)
        # 1 - Phi(z) is evaluated as Phi(-z): the identity is exact and avoids
        # the catastrophic cancellation of subtracting a near-1 CDF value, so
        # this matches level_flip_matrix bit for bit at every margin.
        signed = np.where(nominal_digit, mean - margins, margins - mean)
        return normal_cdf(signed / (self.sigma_v / vdd))


def analytic_flip_probabilities(
    model: UnaryDecisionTree | DecisionTree,
    X: np.ndarray,
    sigma_v: float,
    technology: EGFETTechnology | None = None,
    mean_v: float = 0.0,
) -> np.ndarray:
    """Per-(sample, comparator) analytic digit-flip probabilities.

    The closed-form counterpart of the Monte-Carlo digit comparison inside
    :func:`simulate_offset_variation`: for every sample and every retained
    comparator of the unary tree, the probability that a Gaussian input
    offset of ``sigma_v`` volts flips that comparator's digit.  Columns are
    ordered like :attr:`UnaryDecisionTree.comparators`, so the matrix lines
    up with the offset matrices drawn by
    :meth:`ComparatorOffsetModel.sample_matrix` -- which is exactly what the
    property tests exploit to validate the model against the sampled path.

    Returns an ``(n_samples, n_comparators)`` float matrix.
    """
    technology = technology if technology is not None else default_technology()
    unary = model if isinstance(model, UnaryDecisionTree) else UnaryDecisionTree(model)
    X = np.asarray(X, dtype=float)
    if not unary.comparators:
        return np.zeros((X.shape[0], 0))
    values, nominal_thresholds = _comparator_values_and_thresholds(unary, X)
    margins = values - nominal_thresholds
    offset_model = ComparatorOffsetModel(sigma_v=sigma_v, mean_v=mean_v)
    return offset_model.flip_probability(margins, technology.vdd)


def _comparator_values_and_thresholds(
    unary: UnaryDecisionTree, X: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-comparator sample values and nominal thresholds, in digit order.

    The single source of the comparator convention -- values clipped to full
    scale, comparator ``(feature, level)`` trips at ``level / 2**N`` -- shared
    by the Monte-Carlo prediction path and the analytic flip model, so the
    two can never drift apart.

    Returns ``(values, thresholds)``: an ``(n_samples, n_comparators)``
    gather of the clipped inputs and the ``(n_comparators,)`` nominal
    normalized thresholds.
    """
    comparators = unary.comparators
    features = np.array([feature for feature, _ in comparators], dtype=np.intp)
    levels = np.array([level for _, level in comparators], dtype=float)
    values = np.clip(np.asarray(X, dtype=float)[:, features], 0.0, 1.0)
    return values, levels / 2 ** unary.resolution_bits


def canonical_training_knobs(
    training_sigma: float, robustness_weight: float
) -> tuple[float, float]:
    """Canonical form of the offset-aware-training knobs for cache keys.

    The expected-flip penalty is inert unless *both* knobs are positive --
    the trainer then grows exactly the nominal tree -- so every inert
    spelling collapses to ``(0.0, 0.0)`` and nominal requests alias one
    entry no matter how they were phrased.  Single source of truth for
    :func:`variation_result_key` and the suite key in
    :mod:`repro.analysis.experiments`.
    """
    if training_sigma == 0.0 or robustness_weight == 0.0:
        return 0.0, 0.0
    return float(training_sigma), float(robustness_weight)


def variation_result_key(
    dataset: str,
    seed: int,
    sigma_v: float,
    n_trials: int,
    depth: int,
    tau: float,
    resolution_bits: int = 4,
    technology: EGFETTechnology | None = None,
    test_size: float = 0.3,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
) -> str:
    """Content-address one Monte-Carlo offset-variation run.

    The classifier under analysis is fully determined by ``(dataset, seed,
    depth, tau, resolution_bits, test_size, training_sigma,
    robustness_weight)`` -- the ADC-aware tree trained on the ``test_size``
    split (0.3, the paper's 70/30 protocol, by default), nominally or with
    the offset-aware split-scoring penalty -- so the same key serves both
    the per-seed summaries of ``repro.cli variation`` and the per-point
    robustness columns of the design-space exploration: either entry point
    warms the cache for the other.  ``technology`` (default: the calibrated
    EGFET corner) must match the technology the simulation runs at -- its
    supply voltage scales the offsets -- so custom-corner studies address
    distinct entries, as do runs on non-default splits.  The training
    parameters are canonicalized (a zero ``training_sigma`` zeroes the
    weight too, because the penalty is inert then), so nominal requests
    phrased either way alias one entry.  Dataset abbreviations alias their
    canonical names; unregistered dataset names (ad-hoc studies) are keyed
    verbatim.
    """
    from repro.datasets.registry import canonical_name

    try:
        dataset = canonical_name(dataset)
    except KeyError:
        pass
    training_sigma, robustness_weight = canonical_training_knobs(
        training_sigma, robustness_weight
    )
    return make_key(
        kind="offset_variation",
        dataset=dataset,
        seed=seed,
        sigma_v=float(sigma_v),
        n_trials=int(n_trials),
        depth=int(depth),
        tau=float(tau),
        resolution_bits=int(resolution_bits),
        technology=technology if technology is not None else default_technology(),
        test_size=float(test_size),
        training_sigma=float(training_sigma),
        robustness_weight=float(robustness_weight),
    )


@dataclass(frozen=True)
class VariationAnalysis:
    """Outcome of a Monte-Carlo comparator-offset study.

    Attributes
    ----------
    nominal_accuracy:
        Accuracy with ideal (offset-free) comparators.
    mean_accuracy / std_accuracy / min_accuracy:
        Statistics of the per-trial accuracies under random offsets.
    accuracies:
        Accuracy of every Monte-Carlo trial.
    sigma_v:
        Offset sigma the analysis was run at.
    """

    nominal_accuracy: float
    mean_accuracy: float
    std_accuracy: float
    min_accuracy: float
    accuracies: tuple[float, ...]
    sigma_v: float

    @property
    def mean_accuracy_drop(self) -> float:
        """Average accuracy lost to comparator offsets."""
        return self.nominal_accuracy - self.mean_accuracy

    @property
    def worst_case_drop(self) -> float:
        """Worst-case accuracy lost across the Monte-Carlo trials."""
        return self.nominal_accuracy - self.min_accuracy


def _predict_with_offsets(
    unary: UnaryDecisionTree,
    X: np.ndarray,
    offset_matrix: np.ndarray,
    vdd: float,
) -> np.ndarray:
    """Predict classes for every (trial, sample) pair under offset voltages.

    Comparator ``(feature, level)`` of trial ``t`` fires when the
    (normalized) analog input exceeds ``level / 2**N + offsets[t, c] / vdd``.

    Parameters
    ----------
    unary:
        The unary decision tree under analysis.
    X:
        ``(n_samples, n_features)`` matrix of normalized analog samples.
    offset_matrix:
        ``(n_trials, n_comparators)`` offsets in volts, columns ordered like
        :attr:`UnaryDecisionTree.comparators`.
    vdd:
        Supply (full-scale) voltage of the ADCs.

    Returns
    -------
    np.ndarray
        ``(n_trials, n_samples)`` predicted class labels.
    """
    X = np.asarray(X, dtype=float)
    offset_matrix = np.atleast_2d(np.asarray(offset_matrix, dtype=float))
    comparators = unary.comparators
    if offset_matrix.shape[1] != len(comparators):
        raise ValueError(
            f"offset matrix has {offset_matrix.shape[1]} columns, expected one "
            f"per retained comparator ({len(comparators)})"
        )
    values, nominal_thresholds = _comparator_values_and_thresholds(unary, X)
    thresholds = nominal_thresholds + offset_matrix / vdd  # (trials, comparators)
    digits = values[np.newaxis, :, :] >= thresholds[:, np.newaxis, :]
    n_trials, n_samples = offset_matrix.shape[0], X.shape[0]
    flat = digits.reshape(n_trials * n_samples, len(comparators))
    return unary.predict_digit_matrix(flat).reshape(n_trials, n_samples)


def _predict_with_offsets_scalar(
    unary: UnaryDecisionTree,
    X: np.ndarray,
    offsets: dict[tuple[int, int], float],
    vdd: float,
) -> np.ndarray:
    """Reference implementation: the pre-vectorization per-sample loop.

    One trial's offsets as a ``{(feature, level): volts}`` dict, one
    dict-based digit assignment per sample.  Kept verbatim as the oracle the
    scalar-vs-batch equivalence tests and the throughput benchmark compare
    against; no production path uses it.
    """
    n_levels = 2 ** unary.resolution_bits
    predictions = np.empty(len(X), dtype=np.int64)
    for row_index, row in enumerate(X):
        assignment: dict[str, bool] = {}
        for feature, levels in unary.required_digits.items():
            value = float(np.clip(row[feature], 0.0, 1.0))
            for level in levels:
                threshold = level / n_levels + offsets[(feature, level)] / vdd
                assignment[f"I{feature}_u{level}"] = value >= threshold
        predictions[row_index] = unary.predict_from_assignment(assignment)
    return predictions


def _trial_batch_accuracies(
    unary: UnaryDecisionTree,
    X: np.ndarray,
    y: np.ndarray,
    offset_batch: np.ndarray,
    vdd: float,
) -> list[float]:
    """Top-level (picklable) executor job: accuracies of one trial batch."""
    predictions = _predict_with_offsets(unary, X, offset_batch, vdd)
    return [accuracy_score(y, row) for row in predictions]


def simulate_offset_variation(
    model: UnaryDecisionTree | DecisionTree,
    X: np.ndarray,
    y: np.ndarray,
    sigma_v: float,
    n_trials: int = 50,
    technology: EGFETTechnology | None = None,
    seed: int = 0,
    jobs: int | None = None,
) -> VariationAnalysis:
    """Monte-Carlo accuracy under Gaussian comparator input offsets.

    Parameters
    ----------
    model:
        Trained decision tree (or its unary translation) to analyze.
    X, y:
        Normalized evaluation samples and labels.
    sigma_v:
        Comparator offset standard deviation in volts (printed comparators
        are typically in the tens-of-millivolt range).
    n_trials:
        Number of Monte-Carlo process instances.
    technology:
        Supplies the supply voltage (full-scale range) of the ADCs.
    seed:
        RNG seed; the analysis is reproducible and independent of ``jobs``.
    jobs:
        Worker processes to fan trial batches over (``None``/``1``: in
        process, ``0``: one per CPU).  All offsets are drawn up front, so
        parallel runs are bit-identical to serial ones.
    """
    if n_trials < 1:
        raise ValueError("at least one Monte-Carlo trial is required")
    technology = technology if technology is not None else default_technology()
    unary = model if isinstance(model, UnaryDecisionTree) else UnaryDecisionTree(model)
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)

    offset_model = ComparatorOffsetModel(sigma_v=sigma_v)
    rng = np.random.default_rng(seed)
    comparators = unary.comparators

    nominal = accuracy_score(y, unary.predict(X))
    if not comparators:
        # A single-leaf tree has no comparators and is immune to offsets.
        accuracies = tuple([nominal] * n_trials)
        return VariationAnalysis(
            nominal_accuracy=nominal,
            mean_accuracy=nominal,
            std_accuracy=0.0,
            min_accuracy=nominal,
            accuracies=accuracies,
            sigma_v=sigma_v,
        )

    offsets = offset_model.sample_matrix(rng, n_trials, len(comparators))
    with get_executor(jobs) as executor:
        if executor.jobs > 1 and n_trials > 1:
            batches = np.array_split(offsets, min(executor.jobs, n_trials))
            tasks = [
                (unary, X, y, batch, technology.vdd)
                for batch in batches
                if batch.shape[0]
            ]
            accuracies = [
                accuracy
                for batch_accuracies in executor.map(_trial_batch_accuracies, tasks)
                for accuracy in batch_accuracies
            ]
        else:
            accuracies = _trial_batch_accuracies(unary, X, y, offsets, technology.vdd)

    accuracies_array = np.asarray(accuracies)
    return VariationAnalysis(
        nominal_accuracy=nominal,
        mean_accuracy=float(accuracies_array.mean()),
        std_accuracy=float(accuracies_array.std()),
        min_accuracy=float(accuracies_array.min()),
        accuracies=tuple(float(a) for a in accuracies),
        sigma_v=sigma_v,
    )


def offset_tolerance_sweep(
    model: UnaryDecisionTree | DecisionTree,
    X: np.ndarray,
    y: np.ndarray,
    sigmas_v: tuple[float, ...] = (0.0, 0.01, 0.02, 0.03, 0.05),
    n_trials: int = 30,
    technology: EGFETTechnology | None = None,
    seed: int = 0,
    jobs: int | None = None,
) -> list[VariationAnalysis]:
    """Run :func:`simulate_offset_variation` over a grid of offset sigmas."""
    return [
        simulate_offset_variation(
            model, X, y, sigma_v, n_trials=n_trials, technology=technology,
            seed=seed, jobs=jobs,
        )
        for sigma_v in sigmas_v
    ]
