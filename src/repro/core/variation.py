"""Process-variation modeling for printed comparators.

Printed EGFET devices exhibit large process variability, so a realistic
bespoke ADC must tolerate random comparator input-offset voltages: a
comparator nominally referenced at ``k / 2**N * Vdd`` actually trips at that
voltage plus a device-specific offset.  This module provides a Monte-Carlo
analysis of how such offsets propagate through the unary decision tree to
classification accuracy -- the variability extension the paper leaves to
future work, useful for deciding how much offset the printed comparator
design needs to guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.unary_tree import UnaryDecisionTree
from repro.mltrees.evaluation import accuracy_score
from repro.mltrees.tree import DecisionTree
from repro.pdk.egfet import EGFETTechnology, default_technology


@dataclass(frozen=True)
class ComparatorOffsetModel:
    """Gaussian input-offset model for printed comparators.

    Attributes
    ----------
    sigma_v:
        Standard deviation of the comparator input offset, in volts.
    mean_v:
        Systematic offset component, in volts (0 for a centered process).
    """

    sigma_v: float
    mean_v: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma_v < 0:
            raise ValueError("offset sigma must be >= 0")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` comparator offsets in volts."""
        if self.sigma_v == 0:
            return np.full(size, self.mean_v)
        return rng.normal(self.mean_v, self.sigma_v, size=size)


@dataclass(frozen=True)
class VariationAnalysis:
    """Outcome of a Monte-Carlo comparator-offset study.

    Attributes
    ----------
    nominal_accuracy:
        Accuracy with ideal (offset-free) comparators.
    mean_accuracy / std_accuracy / min_accuracy:
        Statistics of the per-trial accuracies under random offsets.
    accuracies:
        Accuracy of every Monte-Carlo trial.
    sigma_v:
        Offset sigma the analysis was run at.
    """

    nominal_accuracy: float
    mean_accuracy: float
    std_accuracy: float
    min_accuracy: float
    accuracies: tuple[float, ...]
    sigma_v: float

    @property
    def mean_accuracy_drop(self) -> float:
        """Average accuracy lost to comparator offsets."""
        return self.nominal_accuracy - self.mean_accuracy

    @property
    def worst_case_drop(self) -> float:
        """Worst-case accuracy lost across the Monte-Carlo trials."""
        return self.nominal_accuracy - self.min_accuracy


def _predict_with_offsets(
    unary: UnaryDecisionTree,
    X: np.ndarray,
    offsets: dict[tuple[int, int], float],
    vdd: float,
    resolution_bits: int,
) -> np.ndarray:
    """Predict classes when each retained comparator has a voltage offset.

    Comparator ``(feature, level)`` fires when the (normalized) analog input
    exceeds ``level / 2**N + offset / vdd``.
    """
    n_levels = 2 ** resolution_bits
    predictions = np.empty(len(X), dtype=np.int64)
    for row_index, row in enumerate(X):
        assignment: dict[str, bool] = {}
        for feature, levels in unary.required_digits.items():
            value = float(np.clip(row[feature], 0.0, 1.0))
            for level in levels:
                threshold = level / n_levels + offsets[(feature, level)] / vdd
                assignment[f"I{feature}_u{level}"] = value >= threshold
        predictions[row_index] = unary.predict_from_assignment(assignment)
    return predictions


def simulate_offset_variation(
    model: UnaryDecisionTree | DecisionTree,
    X: np.ndarray,
    y: np.ndarray,
    sigma_v: float,
    n_trials: int = 50,
    technology: EGFETTechnology | None = None,
    seed: int = 0,
) -> VariationAnalysis:
    """Monte-Carlo accuracy under Gaussian comparator input offsets.

    Parameters
    ----------
    model:
        Trained decision tree (or its unary translation) to analyze.
    X, y:
        Normalized evaluation samples and labels.
    sigma_v:
        Comparator offset standard deviation in volts (printed comparators
        are typically in the tens-of-millivolt range).
    n_trials:
        Number of Monte-Carlo process instances.
    technology:
        Supplies the supply voltage (full-scale range) of the ADCs.
    seed:
        RNG seed; the analysis is reproducible.
    """
    if n_trials < 1:
        raise ValueError("at least one Monte-Carlo trial is required")
    technology = technology if technology is not None else default_technology()
    unary = model if isinstance(model, UnaryDecisionTree) else UnaryDecisionTree(model)
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)

    offset_model = ComparatorOffsetModel(sigma_v=sigma_v)
    rng = np.random.default_rng(seed)
    comparators = [
        (feature, level)
        for feature, levels in unary.required_digits.items()
        for level in levels
    ]

    nominal = accuracy_score(y, unary.predict(X))
    if not comparators:
        # A single-leaf tree has no comparators and is immune to offsets.
        accuracies = tuple([nominal] * n_trials)
        return VariationAnalysis(
            nominal_accuracy=nominal,
            mean_accuracy=nominal,
            std_accuracy=0.0,
            min_accuracy=nominal,
            accuracies=accuracies,
            sigma_v=sigma_v,
        )

    accuracies = []
    for _ in range(n_trials):
        samples = offset_model.sample(rng, len(comparators))
        offsets = dict(zip(comparators, samples))
        predictions = _predict_with_offsets(
            unary, X, offsets, technology.vdd, unary.resolution_bits
        )
        accuracies.append(accuracy_score(y, predictions))

    accuracies_array = np.asarray(accuracies)
    return VariationAnalysis(
        nominal_accuracy=nominal,
        mean_accuracy=float(accuracies_array.mean()),
        std_accuracy=float(accuracies_array.std()),
        min_accuracy=float(accuracies_array.min()),
        accuracies=tuple(float(a) for a in accuracies),
        sigma_v=sigma_v,
    )


def offset_tolerance_sweep(
    model: UnaryDecisionTree | DecisionTree,
    X: np.ndarray,
    y: np.ndarray,
    sigmas_v: tuple[float, ...] = (0.0, 0.01, 0.02, 0.03, 0.05),
    n_trials: int = 30,
    technology: EGFETTechnology | None = None,
    seed: int = 0,
) -> list[VariationAnalysis]:
    """Run :func:`simulate_offset_variation` over a grid of offset sigmas."""
    return [
        simulate_offset_variation(
            model, X, y, sigma_v, n_trials=n_trials, technology=technology, seed=seed
        )
        for sigma_v in sigmas_v
    ]
