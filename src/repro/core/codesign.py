"""End-to-end co-design framework.

:class:`CoDesignFramework` runs, for one benchmark dataset, the complete flow
the paper evaluates:

1. **Baseline [2]** -- conventional Gini training (minimum depth achieving
   maximum accuracy, up to 8), binary bespoke comparator tree, conventional
   flash ADC per input (Table I).
2. **Unary + bespoke ADCs, ADC-unaware model** -- the *same* baseline tree
   re-implemented with the proposed parallel unary architecture and bespoke
   ADCs (Fig. 4).
3. **ADC-aware co-design** -- the depth x tau exploration with the ADC-aware
   trainer, and the selection of the most power-efficient design for each
   accuracy-loss constraint (Fig. 5, Table II).
4. **Approximate baseline [7]** (optional) -- precision-scaled comparison
   point of Table II.
5. **Self-power feasibility** of every produced design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.balaskas import BalaskasApproximateDesign, fit_balaskas_design
from repro.baselines.mubarik import BaselineBespokeDesign
from repro.core.executor import Executor
from repro.core.exploration import (
    DEFAULT_DEPTHS,
    DEFAULT_TAUS,
    DesignPoint,
    DesignSpaceExplorer,
    proposed_hardware_report,
    select_best_design,
)
from repro.core.metrics import ClassifierDesign, ReductionReport, compare_designs
from repro.core.power_budget import SelfPowerAnalysis, analyze_self_power
from repro.datasets.base import Dataset
from repro.mltrees.cart import fit_baseline_tree
from repro.mltrees.evaluation import resolve_engine, train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.pdk.egfet import EGFETTechnology, default_technology


@dataclass
class CoDesignResult:
    """Everything the evaluation section needs for one benchmark dataset."""

    dataset: str
    baseline: ClassifierDesign
    unary_bespoke_adc: ClassifierDesign
    exploration: list[DesignPoint]
    selected: dict[float, ClassifierDesign]
    approximate_baseline: ClassifierDesign | None = None
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # derived quantities used by the figures/tables
    # ------------------------------------------------------------------ #
    def fig4_reduction(self) -> ReductionReport:
        """Gains of the bespoke-ADC unary design over the baseline [2] (Fig. 4)."""
        return compare_designs(self.baseline.hardware, self.unary_bespoke_adc.hardware)

    def fig5_reduction(self, accuracy_loss: float) -> ReductionReport | None:
        """Additional gains of ADC-aware training over the Fig. 4 design (Fig. 5)."""
        chosen = self.selected.get(accuracy_loss)
        if chosen is None:
            return None
        return compare_designs(self.unary_bespoke_adc.hardware, chosen.hardware)

    def table2_reduction(self, accuracy_loss: float = 0.01) -> ReductionReport | None:
        """Gains of the selected co-design over the baseline [2] (Table II)."""
        chosen = self.selected.get(accuracy_loss)
        if chosen is None:
            return None
        return compare_designs(self.baseline.hardware, chosen.hardware)

    def table2_reduction_vs_approximate(
        self, accuracy_loss: float = 0.01
    ) -> ReductionReport | None:
        """Gains of the selected co-design over the approximate baseline [7]."""
        chosen = self.selected.get(accuracy_loss)
        if chosen is None or self.approximate_baseline is None:
            return None
        return compare_designs(self.approximate_baseline.hardware, chosen.hardware)

    def self_power(self, accuracy_loss: float = 0.01) -> SelfPowerAnalysis | None:
        """Self-power feasibility of the selected co-design."""
        chosen = self.selected.get(accuracy_loss)
        if chosen is None:
            return None
        technology = self.metadata.get("technology")
        return analyze_self_power(chosen.hardware, technology)


class CoDesignFramework:
    """Orchestrates the full paper flow for one dataset."""

    def __init__(
        self,
        technology: EGFETTechnology | None = None,
        resolution_bits: int = 4,
        max_baseline_depth: int = 8,
        depths: tuple[int, ...] = DEFAULT_DEPTHS,
        taus: tuple[float, ...] = DEFAULT_TAUS,
        accuracy_losses: tuple[float, ...] = (0.0, 0.01, 0.05),
        test_size: float = 0.3,
        seed: int = 0,
        include_approximate_baseline: bool = True,
        executor: Executor | None = None,
        training_sigma: float = 0.0,
        robustness_weight: float = 1.0,
        engine: str = "batch",
        ppa_backend=None,
    ):
        from repro.circuits.ppa import resolve_ppa_backend

        self.technology = technology if technology is not None else default_technology()
        self.resolution_bits = resolution_bits
        self.max_baseline_depth = max_baseline_depth
        self.depths = tuple(depths)
        self.taus = tuple(taus)
        self.accuracy_losses = tuple(accuracy_losses)
        self.test_size = test_size
        self.seed = seed
        self.include_approximate_baseline = include_approximate_baseline
        #: Offset-aware training knobs of the depth x tau exploration: the
        #: comparator offset sigma (volts) the trainer assumes, and the
        #: weight of the expected-flip penalty in its split scores.  The
        #: baseline [2] stays nominal -- it is the reference the accuracy
        #: losses are measured against.
        if training_sigma < 0:
            raise ValueError("training_sigma must be >= 0")
        if robustness_weight < 0:
            raise ValueError("robustness_weight must be >= 0")
        self.training_sigma = training_sigma
        self.robustness_weight = robustness_weight
        #: Execution backend for the depth x tau sweep (None: serial).  Not
        #: part of the experiment configuration: it never changes results.
        self.executor = executor
        #: Inference engine for the sweep's test-set scoring ("batch" or
        #: "bitparallel").  Like the executor, pure execution tuning:
        #: engines are bit-identical, so results and cache keys never
        #: depend on it.
        self.engine = resolve_engine(engine)
        #: Source of the digital area/power numbers for the unary designs
        #: (default: the analytic cell-count model, bit-identical to the
        #: pre-backend flow).  The baseline [2] comparator tree keeps the
        #: analytic model -- it is the literature reference the reductions
        #: are measured against, not a design this framework exports.
        self.ppa_backend = resolve_ppa_backend(ppa_backend)

    # ------------------------------------------------------------------ #
    # data preparation
    # ------------------------------------------------------------------ #
    def prepare(self, dataset: Dataset):
        """Split and quantize a dataset with the paper's 70/30 protocol."""
        X_train, X_test, y_train, y_test = train_test_split(
            dataset.X, dataset.y, test_size=self.test_size, seed=self.seed
        )
        return (
            quantize_dataset(X_train, self.resolution_bits),
            quantize_dataset(X_test, self.resolution_bits),
            y_train,
            y_test,
        )

    # ------------------------------------------------------------------ #
    # individual stages
    # ------------------------------------------------------------------ #
    def run_baseline(
        self,
        dataset: Dataset,
        X_train_levels: np.ndarray,
        y_train: np.ndarray,
        X_test_levels: np.ndarray,
        y_test: np.ndarray,
    ) -> tuple[ClassifierDesign, ClassifierDesign]:
        """Build the Table I baseline and its Fig. 4 unary re-implementation."""
        fit = fit_baseline_tree(
            X_train_levels,
            y_train,
            X_test_levels,
            y_test,
            n_classes=dataset.n_classes,
            max_depth=self.max_baseline_depth,
            resolution_bits=self.resolution_bits,
            seed=self.seed,
        )
        baseline_impl = BaselineBespokeDesign(
            fit.tree, self.technology, name=f"baseline[2] {dataset.name}"
        )
        baseline = ClassifierDesign(
            name="baseline[2]",
            dataset=dataset.name,
            accuracy=fit.test_accuracy,
            hardware=baseline_impl.hardware_report(),
            depth=fit.depth,
        )
        unary_hw = proposed_hardware_report(
            fit.tree,
            self.technology,
            name=f"unary+bespokeADC {dataset.name}",
            ppa_backend=self.ppa_backend,
        )
        unary = ClassifierDesign(
            name="unary+bespokeADC (ADC-unaware model)",
            dataset=dataset.name,
            accuracy=fit.test_accuracy,
            hardware=unary_hw,
            depth=fit.depth,
        )
        return baseline, unary

    def run_exploration(
        self,
        dataset: Dataset,
        X_train_levels: np.ndarray,
        y_train: np.ndarray,
        X_test_levels: np.ndarray,
        y_test: np.ndarray,
    ) -> list[DesignPoint]:
        """Run the ADC-aware depth x tau sweep."""
        explorer = DesignSpaceExplorer(
            technology=self.technology,
            resolution_bits=self.resolution_bits,
            depths=self.depths,
            taus=self.taus,
            seed=self.seed,
            training_sigma=self.training_sigma,
            robustness_weight=self.robustness_weight,
            engine=self.engine,
            ppa_backend=self.ppa_backend,
        )
        return explorer.explore(
            X_train_levels,
            y_train,
            X_test_levels,
            y_test,
            n_classes=dataset.n_classes,
            dataset_name=dataset.name,
            executor=self.executor,
        )

    def run_robustness(
        self,
        dataset: Dataset,
        exploration: list[DesignPoint],
        sigma_v: float,
        n_trials: int = 100,
        store=None,
    ) -> list[DesignPoint]:
        """Variation-aware pass: Monte-Carlo every explored design point.

        Re-derives the paper's 70/30 split to recover the *analog* test
        samples (offsets act in the continuous input domain, before
        quantization) and fans one comparator-offset analysis per point
        through the framework executor.  Per-point summaries are cached in
        ``store`` under the shared variation keys.  The returned points carry
        ``mean_accuracy_drop`` / ``worst_case_drop`` columns, ready for an
        offset-aware :func:`~repro.core.exploration.select_best_design` with
        a ``max_accuracy_drop`` constraint.
        """
        _, X_test, _, y_test = train_test_split(
            dataset.X, dataset.y, test_size=self.test_size, seed=self.seed
        )
        explorer = DesignSpaceExplorer(
            technology=self.technology,
            resolution_bits=self.resolution_bits,
            depths=self.depths,
            taus=self.taus,
            seed=self.seed,
            training_sigma=self.training_sigma,
            robustness_weight=self.robustness_weight,
        )
        return explorer.evaluate_robustness(
            exploration,
            X_test,
            y_test,
            sigma_v,
            n_trials=n_trials,
            executor=self.executor,
            store=store,
            test_size=self.test_size,
        )

    def run_approximate_baseline(
        self,
        dataset: Dataset,
        baseline: ClassifierDesign,
        X_train_levels: np.ndarray,
        y_train: np.ndarray,
        X_test_levels: np.ndarray,
        y_test: np.ndarray,
        max_accuracy_loss: float = 0.01,
    ) -> ClassifierDesign:
        """Fit the approximate baseline [7] under the Table II loss budget."""
        design: BalaskasApproximateDesign = fit_balaskas_design(
            X_train_levels,
            y_train,
            X_test_levels,
            y_test,
            n_classes=dataset.n_classes,
            reference_accuracy=baseline.accuracy,
            reference_depth=baseline.depth,
            max_accuracy_loss=max_accuracy_loss,
            resolution_bits=self.resolution_bits,
            technology=self.technology,
            seed=self.seed,
        )
        return ClassifierDesign(
            name="approximate[7]",
            dataset=dataset.name,
            accuracy=design.accuracy,
            hardware=design.hardware_report(),
            depth=design.depth,
            extra={"per_feature_bits": design.per_feature_bits},
        )

    # ------------------------------------------------------------------ #
    # end-to-end
    # ------------------------------------------------------------------ #
    def run(self, dataset: Dataset) -> CoDesignResult:
        """Run the complete co-design flow on one benchmark dataset."""
        X_train_levels, X_test_levels, y_train, y_test = self.prepare(dataset)

        baseline, unary = self.run_baseline(
            dataset, X_train_levels, y_train, X_test_levels, y_test
        )
        exploration = self.run_exploration(
            dataset, X_train_levels, y_train, X_test_levels, y_test
        )

        selected: dict[float, ClassifierDesign] = {}
        for loss in self.accuracy_losses:
            point = select_best_design(exploration, baseline.accuracy, loss)
            if point is None:
                continue
            selected[loss] = ClassifierDesign(
                name=f"codesign (<= {loss:.0%} accuracy loss)",
                dataset=dataset.name,
                accuracy=point.accuracy,
                hardware=point.hardware,
                depth=point.depth,
                tau=point.tau,
            )

        approximate = None
        if self.include_approximate_baseline:
            approximate = self.run_approximate_baseline(
                dataset, baseline, X_train_levels, y_train, X_test_levels, y_test
            )

        return CoDesignResult(
            dataset=dataset.name,
            baseline=baseline,
            unary_bespoke_adc=unary,
            exploration=exploration,
            selected=selected,
            approximate_baseline=approximate,
            metadata={
                "technology": self.technology,
                "abbreviation": dataset.metadata.get("abbreviation", dataset.name[:2].upper()),
                "seed": self.seed,
            },
        )
