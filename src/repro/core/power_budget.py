"""Self-power feasibility analysis (Section IV, closing discussion).

A printed classifier is *self-powered* when the whole on-sensor system --
ADC front end, decision-tree logic and the printed sensors themselves --
fits inside the power budget of a printed energy harvester (about 2 mW).
The paper's headline result is that the co-designed classifiers meet this
budget on every benchmark (Pendigits only at 10 % accuracy loss), whereas
none of the baseline designs do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import HardwareReport
from repro.pdk.egfet import EGFETTechnology, default_technology
from repro.pdk.sensors import SensorSuite


@dataclass(frozen=True)
class SelfPowerAnalysis:
    """Outcome of a self-power feasibility check.

    Attributes
    ----------
    design:
        Name of the analyzed classifier implementation.
    classifier_power_mw:
        ADC + digital power of the classifier.
    sensor_power_mw:
        Power of the printed sensors (one per used input feature).
    harvester_budget_mw:
        Power the printed energy harvester can deliver.
    """

    design: str
    classifier_power_mw: float
    sensor_power_mw: float
    harvester_budget_mw: float

    @property
    def total_power_mw(self) -> float:
        """Classifier plus sensor power."""
        return self.classifier_power_mw + self.sensor_power_mw

    @property
    def is_self_powered(self) -> bool:
        """True when the complete system fits inside the harvester budget."""
        return self.total_power_mw <= self.harvester_budget_mw

    @property
    def headroom_mw(self) -> float:
        """Remaining harvester budget (negative when infeasible)."""
        return self.harvester_budget_mw - self.total_power_mw

    @property
    def utilization(self) -> float:
        """Fraction of the harvester budget consumed."""
        return self.total_power_mw / self.harvester_budget_mw


def analyze_self_power(
    hardware: HardwareReport,
    technology: EGFETTechnology | None = None,
) -> SelfPowerAnalysis:
    """Check whether a classifier implementation can run from a printed harvester.

    One printed sensor is accounted per used input feature (unused features
    need neither a sensor nor an ADC channel).
    """
    technology = technology if technology is not None else default_technology()
    sensors = SensorSuite(n_sensors=hardware.n_inputs, sensor=technology.sensor)
    return SelfPowerAnalysis(
        design=hardware.name,
        classifier_power_mw=hardware.total_power_mw,
        sensor_power_mw=sensors.power_mw,
        harvester_budget_mw=technology.harvester.budget_mw,
    )
