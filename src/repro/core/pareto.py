"""Pareto-front utilities for the design-space exploration.

The constrained selection of Section IV answers "cheapest design within X %
accuracy loss"; the Pareto front answers the broader question "which explored
designs are worth looking at at all".  These helpers are generic over the
objectives so they can rank accuracy-vs-power, accuracy-vs-area, or any other
pair extracted from :class:`~repro.core.exploration.DesignPoint`.

Two layers live here:

* the original two-objective ``(maximize, minimize)`` helpers the analysis
  tables grew up on (:func:`pareto_front` and the accuracy-vs-cost
  convenience fronts), and
* the general **minimize-tuple** primitives (:func:`dominates`,
  :func:`non_dominated_indices`) the budgeted multi-objective search
  (:mod:`repro.search`) extracts its fronts with: every objective tuple is
  minimized component-wise, maximized metrics enter negated (the
  ``(-accuracy, power, area)`` convention of the study objectives).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.exploration import DesignPoint


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when minimize-tuple ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` when it is no worse on every component and
    strictly better on at least one.  Equal tuples never dominate each
    other, so duplicated objective vectors coexist on a front.
    """
    if len(a) != len(b):
        raise ValueError(
            f"objective tuples must have equal length, got {len(a)} and {len(b)}"
        )
    at_least_as_good = all(ai <= bi for ai, bi in zip(a, b))
    return at_least_as_good and any(ai < bi for ai, bi in zip(a, b))


def non_dominated_indices(objectives: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated minimize-tuples, in input order.

    Brute-force pairwise dominance (the reference semantics the NSGA-II
    sort in :mod:`repro.search.optimizer` is property-tested against).
    Duplicated tuples are all retained -- neither copy dominates the other
    -- so callers that want one representative per objective vector
    deduplicate on top.
    """
    front: list[int] = []
    for i, candidate in enumerate(objectives):
        if not any(
            dominates(other, candidate)
            for j, other in enumerate(objectives)
            if j != i
        ):
            front.append(i)
    return front


def pareto_front(
    items: Sequence,
    maximize: Callable[[object], float],
    minimize: Callable[[object], float],
) -> list:
    """Return the items not dominated under (maximize, minimize) objectives.

    An item is dominated when another item is at least as good on both
    objectives and strictly better on at least one.  The returned front is
    sorted by the minimized objective (ascending).
    """
    front = []
    for item in items:
        dominated = False
        for other in items:
            if other is item:
                continue
            at_least_as_good = (
                maximize(other) >= maximize(item) and minimize(other) <= minimize(item)
            )
            strictly_better = (
                maximize(other) > maximize(item) or minimize(other) < minimize(item)
            )
            if at_least_as_good and strictly_better:
                dominated = True
                break
        if not dominated:
            front.append(item)
    # Deduplicate identical objective pairs while preserving determinism.
    seen: set[tuple[float, float]] = set()
    unique = []
    for item in sorted(front, key=lambda it: (minimize(it), -maximize(it))):
        key = (round(minimize(item), 12), round(maximize(item), 12))
        if key not in seen:
            seen.add(key)
            unique.append(item)
    return unique


def accuracy_power_front(points: Sequence[DesignPoint]) -> list[DesignPoint]:
    """Accuracy-vs-total-power Pareto front of explored design points."""
    return pareto_front(
        points,
        maximize=lambda p: p.accuracy,
        minimize=lambda p: p.hardware.total_power_uw,
    )


def accuracy_area_front(points: Sequence[DesignPoint]) -> list[DesignPoint]:
    """Accuracy-vs-total-area Pareto front of explored design points."""
    return pareto_front(
        points,
        maximize=lambda p: p.accuracy,
        minimize=lambda p: p.hardware.total_area_mm2,
    )
