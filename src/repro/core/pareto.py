"""Pareto-front utilities for the design-space exploration.

The constrained selection of Section IV answers "cheapest design within X %
accuracy loss"; the Pareto front answers the broader question "which explored
designs are worth looking at at all".  These helpers are generic over the
objectives so they can rank accuracy-vs-power, accuracy-vs-area, or any other
pair extracted from :class:`~repro.core.exploration.DesignPoint`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.exploration import DesignPoint


def pareto_front(
    items: Sequence,
    maximize: Callable[[object], float],
    minimize: Callable[[object], float],
) -> list:
    """Return the items not dominated under (maximize, minimize) objectives.

    An item is dominated when another item is at least as good on both
    objectives and strictly better on at least one.  The returned front is
    sorted by the minimized objective (ascending).
    """
    front = []
    for item in items:
        dominated = False
        for other in items:
            if other is item:
                continue
            at_least_as_good = (
                maximize(other) >= maximize(item) and minimize(other) <= minimize(item)
            )
            strictly_better = (
                maximize(other) > maximize(item) or minimize(other) < minimize(item)
            )
            if at_least_as_good and strictly_better:
                dominated = True
                break
        if not dominated:
            front.append(item)
    # Deduplicate identical objective pairs while preserving determinism.
    seen: set[tuple[float, float]] = set()
    unique = []
    for item in sorted(front, key=lambda it: (minimize(it), -maximize(it))):
        key = (round(minimize(item), 12), round(maximize(item), 12))
        if key not in seen:
            seen.add(key)
            unique.append(item)
    return unique


def accuracy_power_front(points: Sequence[DesignPoint]) -> list[DesignPoint]:
    """Accuracy-vs-total-power Pareto front of explored design points."""
    return pareto_front(
        points,
        maximize=lambda p: p.accuracy,
        minimize=lambda p: p.hardware.total_power_uw,
    )


def accuracy_area_front(points: Sequence[DesignPoint]) -> list[DesignPoint]:
    """Accuracy-vs-total-area Pareto front of explored design points."""
    return pareto_front(
        points,
        maximize=lambda p: p.accuracy,
        minimize=lambda p: p.hardware.total_area_mm2,
    )
