"""Co-design core: the paper's contribution.

This package implements the three pieces of the proposed framework and the
orchestration that ties them to the substrates:

* :mod:`repro.core.unary_tree` -- the fully parallel unary decision-tree
  architecture of Section III-A, where every comparison collapses into one
  unary digit and each class label becomes two-level AND-OR logic (Fig. 2),
* :mod:`repro.core.bespoke_adc` -- generation of the bespoke ADC front end of
  Section III-B from the trained tree parameters,
* :mod:`repro.core.adc_aware_training` -- the ADC-aware training of
  Section III-C (Algorithm 1),
* :mod:`repro.core.exploration` -- the depth x tau design-space exploration
  and accuracy-loss-constrained selection used in Section IV,
* :mod:`repro.core.codesign` -- the end-to-end :class:`CoDesignFramework`
  producing baseline, ADC-unaware-unary and fully co-designed classifiers,
* :mod:`repro.core.power_budget` -- the self-power feasibility analysis
  against printed energy harvesters,
* :mod:`repro.core.metrics` -- hardware/accuracy report records and
  reduction arithmetic shared by the benchmarks,
* :mod:`repro.core.executor` -- serial/process-parallel execution backends
  the design-space sweep and the benchmark suite submit their jobs through,
* :mod:`repro.core.store` -- content-addressed on-disk result store shared
  across processes and CI jobs, with shard-store merge/transport,
* :mod:`repro.core.sharding` -- deterministic work-unit planner splitting a
  suite run across machines/CI jobs by stable hashing.
"""

from repro.core.metrics import (
    ClassifierDesign,
    HardwareReport,
    ReductionReport,
    reduction_factor,
    reduction_percent,
)
from repro.core.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    get_executor,
)
from repro.core.store import MergeReport, ResultStore, StoreStats, make_key
from repro.core.sharding import (
    MissingResultsError,
    ShardSpec,
    SuitePlan,
    WorkUnit,
    normalize_sigmas,
    plan_suite_units,
    suite_work_unit,
    variation_work_unit,
)
from repro.core.unary_tree import UnaryDecisionTree
from repro.core.bespoke_adc import build_bespoke_adcs, build_bespoke_frontend
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.exploration import DesignPoint, DesignSpaceExplorer, select_best_design
from repro.core.pareto import accuracy_area_front, accuracy_power_front, pareto_front
from repro.core.power_budget import SelfPowerAnalysis, analyze_self_power
from repro.core.variation import (
    ComparatorOffsetModel,
    VariationAnalysis,
    offset_tolerance_sweep,
    simulate_offset_variation,
    variation_result_key,
)
from repro.core.datasheet import generate_datasheet
from repro.core.codesign import CoDesignFramework, CoDesignResult

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "get_executor",
    "ResultStore",
    "StoreStats",
    "MergeReport",
    "make_key",
    "ShardSpec",
    "WorkUnit",
    "SuitePlan",
    "MissingResultsError",
    "normalize_sigmas",
    "plan_suite_units",
    "suite_work_unit",
    "variation_work_unit",
    "HardwareReport",
    "ClassifierDesign",
    "ReductionReport",
    "reduction_factor",
    "reduction_percent",
    "UnaryDecisionTree",
    "build_bespoke_adcs",
    "build_bespoke_frontend",
    "ADCAwareTrainer",
    "DesignPoint",
    "DesignSpaceExplorer",
    "select_best_design",
    "pareto_front",
    "accuracy_power_front",
    "accuracy_area_front",
    "SelfPowerAnalysis",
    "analyze_self_power",
    "CoDesignFramework",
    "CoDesignResult",
    "ComparatorOffsetModel",
    "VariationAnalysis",
    "simulate_offset_variation",
    "offset_tolerance_sweep",
    "variation_result_key",
    "generate_datasheet",
]
