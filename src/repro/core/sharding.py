"""Deterministic work-unit planning for sharded suite execution.

A *work unit* is one store-addressable computation of the benchmark suite:

* a ``suite`` unit -- the full co-design flow of one benchmark dataset at
  one ``include_approximate_baseline`` variant (the per-dataset cache
  granularity of :func:`repro.analysis.experiments.run_benchmark_suite`;
  Table I and Figs. 4/5 render from the ``False`` variant, Table II from
  ``True``), and
* a ``variation`` unit -- one comparator-offset Monte-Carlo summary of one
  (dataset, depth, tau) design point at a given sigma (the per-point cache
  granularity shared by ``repro.cli variation`` and ``explore``).

:func:`plan_suite_units` enumerates the units of a suite configuration in a
canonical order, and every unit assigns itself to one of ``N`` shards by
**stable hashing** (:meth:`WorkUnit.shard_index`): SHA-256 of the unit's
canonical identity, which contains only *what* is computed -- dataset, seed,
grid, sigma, training knobs -- never the code version, the enumeration
order, or anything process-specific.  Shard membership is therefore
reproducible across machines and invariant to dataset ordering: shard
``K/N`` computes the same subset wherever it runs, and the union over
``K = 1..N`` is a disjoint cover of the full plan.

Each shard computes its units into its own
:class:`~repro.core.store.ResultStore`, ships the store as a CI artifact
(:meth:`~repro.core.store.ResultStore.export_archive`), and a final
assemble step folds the shard stores into one
(:meth:`~repro.core.store.ResultStore.merge_from`) and renders every table
from cache hits only (``repro.cli assemble``), raising
:class:`MissingResultsError` -- with the missing keys listed -- when any
planned unit was never computed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.exploration import DEFAULT_DEPTHS, DEFAULT_TAUS, grid_points
from repro.core.store import make_key
from repro.core.variation import canonical_training_knobs, variation_result_key
from repro.datasets.registry import canonical_name
from repro.pdk.egfet import default_technology


def normalize_sigmas(
    sigmas,
    sigma_v: float | None = None,
) -> tuple[float, ...]:
    """Canonicalize a sigma request to a sorted, deduplicated tuple.

    Accepts the plural spelling (``sigmas``, any iterable of floats), the
    legacy singular spelling (``sigma_v``), or neither (empty tuple -- no
    variation units planned).  Passing both is ambiguous and rejected.  The
    canonical form is ascending and duplicate-free, so two requests naming
    the same sigma set -- in any order, with repeats -- plan the same units.
    """
    if sigmas is not None and sigma_v is not None:
        raise ValueError("pass either sigmas=... or sigma_v=..., not both")
    if sigmas is None:
        sigmas = () if sigma_v is None else (sigma_v,)
    if isinstance(sigmas, (int, float)):
        sigmas = (sigmas,)
    values = []
    for sigma in sigmas:
        sigma = float(sigma)
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma:g}")
        values.append(sigma)
    return tuple(sorted(set(values)))


def suite_result_key(
    dataset: str,
    seed: int,
    include_approximate_baseline: bool,
    depths: tuple[int, ...],
    taus: tuple[float, ...],
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
) -> str:
    """Content-address one benchmark run of the suite configuration.

    The key normalizes the dataset name and the grid containers and folds in
    the (default) technology and the code version, so equivalent requests
    alias and stale results from older code do not.  The offset-aware
    training knobs participate too (canonicalized: ``training_sigma == 0``
    zeroes the weight, because the penalty is inert then), so nominal and
    offset-aware sweeps address distinct entries while equivalent nominal
    requests keep aliasing.
    """
    training_sigma, robustness_weight = canonical_training_knobs(
        training_sigma, robustness_weight
    )
    return make_key(
        dataset=canonical_name(dataset),
        seed=seed,
        include_approximate_baseline=bool(include_approximate_baseline),
        depths=tuple(depths),
        taus=tuple(taus),
        technology=default_technology(),
        training_sigma=float(training_sigma),
        robustness_weight=float(robustness_weight),
    )


def canonical_trial_key(
    dataset: str,
    seed: int,
    depth: int,
    tau: float,
    resolution_bits: int = 4,
    technology=None,
    test_size: float = 0.3,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
) -> str:
    """Content-address one (dataset, depth, tau, training) design point.

    This is the **single** cache identity for an individually evaluated
    design point, shared by search trials (:mod:`repro.search`) and any
    future per-point consumer, so two code paths evaluating the same point
    can never drift to different keys.  Normalization mirrors the suite and
    variation keys exactly: canonical dataset name, canonical training
    knobs (``training_sigma == 0`` zeroes the weight -- the penalty is
    inert then, and ``robustness_weight == 0`` zeroes the sigma for the
    same reason), the default technology when none is given, and the code
    version folded in by :func:`~repro.core.store.make_key`.
    """
    training_sigma, robustness_weight = canonical_training_knobs(
        training_sigma, robustness_weight
    )
    return make_key(
        kind="design_point",
        dataset=canonical_name(dataset),
        seed=int(seed),
        depth=int(depth),
        tau=float(tau),
        resolution_bits=int(resolution_bits),
        technology=technology if technology is not None else default_technology(),
        test_size=float(test_size),
        training_sigma=float(training_sigma),
        robustness_weight=float(robustness_weight),
    )


@dataclass(frozen=True)
class ShardSpec:
    """One shard of an ``N``-way split, written ``K/N`` (1-based)."""

    index: int
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("shard count must be >= 1")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI spelling ``"K/N"`` (e.g. ``"2/3"``)."""
        head, sep, tail = str(text).strip().partition("/")
        try:
            if not sep:
                raise ValueError
            index, count = int(head), int(tail)
        except ValueError:
            raise ValueError(
                f"shard must be spelled K/N (e.g. 2/3), got {text!r}"
            ) from None
        return cls(index=index, count=count)

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


@dataclass(frozen=True)
class WorkUnit:
    """One store-addressable computation of a suite plan.

    ``identity`` is the unit's canonical, code-version-independent identity
    (primitives only) -- the sole input of the shard hash, so membership
    survives version bumps even though ``store_key`` does not.  ``params``
    carries everything needed to compute the unit; it does not participate
    in equality or hashing.
    """

    kind: str  #: ``"suite"`` or ``"variation"``
    dataset: str
    seed: int
    label: str  #: human-readable name used in plans and error listings
    store_key: str  #: content address of the result in the ResultStore
    identity: tuple
    params: dict = field(compare=False, repr=False)

    def shard_index(self, n_shards: int) -> int:
        """Stable 1-based shard assignment of this unit among ``n_shards``.

        SHA-256 of the canonical JSON form of :attr:`identity`: independent
        of ``PYTHONHASHSEED``, the host, the process, and the order the plan
        enumerated its units in.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        rendered = json.dumps(self.identity, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(rendered.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % n_shards + 1


def suite_work_unit(
    dataset: str,
    seed: int,
    include_approximate_baseline: bool,
    depths: tuple[int, ...],
    taus: tuple[float, ...],
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
) -> WorkUnit:
    """The work unit of one per-dataset suite run (one cache entry)."""
    name = canonical_name(dataset)
    training_sigma, robustness_weight = canonical_training_knobs(
        training_sigma, robustness_weight
    )
    variant = "table2" if include_approximate_baseline else "table1"
    return WorkUnit(
        kind="suite",
        dataset=name,
        seed=int(seed),
        label=f"suite:{name}[{variant}]",
        store_key=suite_result_key(
            name, seed, include_approximate_baseline, depths, taus,
            training_sigma=training_sigma, robustness_weight=robustness_weight,
        ),
        identity=(
            "suite", name, int(seed), bool(include_approximate_baseline),
            tuple(depths), tuple(taus),
            float(training_sigma), float(robustness_weight),
        ),
        params={
            "include_approximate_baseline": bool(include_approximate_baseline),
            "depths": tuple(depths),
            "taus": tuple(taus),
            "training_sigma": float(training_sigma),
            "robustness_weight": float(robustness_weight),
        },
    )


def variation_work_unit(
    dataset: str,
    seed: int,
    sigma_v: float,
    n_trials: int,
    depth: int,
    tau: float,
    resolution_bits: int = 4,
    test_size: float = 0.3,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
) -> WorkUnit:
    """The work unit of one per-point offset Monte-Carlo (one cache entry)."""
    name = canonical_name(dataset)
    training_sigma, robustness_weight = canonical_training_knobs(
        training_sigma, robustness_weight
    )
    return WorkUnit(
        kind="variation",
        dataset=name,
        seed=int(seed),
        label=f"variation:{name}[d={depth},tau={tau:g},sigma={sigma_v:g}]",
        store_key=variation_result_key(
            name, seed, sigma_v, n_trials, depth, tau, resolution_bits,
            test_size=test_size,
            training_sigma=training_sigma, robustness_weight=robustness_weight,
        ),
        identity=(
            "variation", name, int(seed), float(sigma_v), int(n_trials),
            int(depth), float(tau), int(resolution_bits), float(test_size),
            float(training_sigma), float(robustness_weight),
        ),
        params={
            "sigma_v": float(sigma_v),
            "n_trials": int(n_trials),
            "depth": int(depth),
            "tau": float(tau),
            "resolution_bits": int(resolution_bits),
            "test_size": float(test_size),
            "training_sigma": float(training_sigma),
            "robustness_weight": float(robustness_weight),
        },
    )


class MissingResultsError(RuntimeError):
    """A cache-only run found planned units absent from the store.

    ``missing`` holds ``(label, store_key)`` pairs -- enough to see *which*
    shard never ran and to look the keys up by hand.  The message lists
    every pair, so a failed CI assemble names the gap instead of a generic
    nonzero exit.
    """

    def __init__(self, missing):
        self.missing: tuple[tuple[str, str], ...] = tuple(
            (str(label), str(key)) for label, key in missing
        )
        lines = "\n".join(f"  {label}  {key}" for label, key in self.missing)
        super().__init__(
            f"{len(self.missing)} planned unit(s) missing from the result "
            f"store (was a shard skipped?):\n{lines}"
        )


@dataclass(frozen=True)
class SuitePlan:
    """The deterministic work-unit enumeration of one suite configuration.

    Carries the configuration itself (so a shard runner can reconstruct the
    exact :func:`~repro.analysis.experiments.run_benchmark_suite` calls) and
    the canonical unit tuple.  Partitioning happens per unit via
    :meth:`WorkUnit.shard_index`; :meth:`shard` filters, :meth:`missing`
    diffs the plan against a store.
    """

    datasets: tuple[str, ...]
    seed: int
    depths: tuple[int, ...]
    taus: tuple[float, ...]
    include_approximate_variants: tuple[bool, ...]
    sigmas: tuple[float, ...]
    n_trials: int
    training_sigma: float
    robustness_weight: float
    units: tuple[WorkUnit, ...]

    @property
    def sigma_v(self) -> float | None:
        """Back-compat single-sigma view: the sigma when exactly one is planned."""
        return self.sigmas[0] if len(self.sigmas) == 1 else None

    def shard(self, spec: ShardSpec | None) -> tuple[WorkUnit, ...]:
        """The units assigned to ``spec`` (all units when ``spec`` is None)."""
        if spec is None:
            return self.units
        return tuple(
            unit for unit in self.units
            if unit.shard_index(spec.count) == spec.index
        )

    def missing(self, store) -> tuple[WorkUnit, ...]:
        """Planned units whose results are absent from ``store``.

        Pure membership checks: never loads entries, never counts store
        misses -- so a subsequent cache-only render still reports zero
        misses on a complete store.
        """
        return tuple(unit for unit in self.units if unit.store_key not in store)


def plan_suite_units(
    datasets: tuple[str, ...] | None = None,
    seed: int = 0,
    depths: tuple[int, ...] = DEFAULT_DEPTHS,
    taus: tuple[float, ...] = DEFAULT_TAUS,
    fast: bool = False,
    include_approximate_variants: tuple[bool, ...] = (False, True),
    sigma_v: float | None = None,
    n_trials: int = 100,
    resolution_bits: int = 4,
    test_size: float = 0.3,
    training_sigma: float = 0.0,
    robustness_weight: float = 1.0,
    sigmas: tuple[float, ...] | None = None,
) -> SuitePlan:
    """Enumerate the work units of one suite configuration, in canonical order.

    Suite units come first (dataset-major, the ``include_approximate``
    variants inner); with ``sigmas`` given (or the legacy single-value
    ``sigma_v`` spelling), one variation unit per (dataset, sigma, depth,
    tau) point follows (dataset-major, sigmas ascending, the grid in the
    depth-major order of :func:`~repro.core.exploration.grid_points`).  The
    sigma request is canonicalized by :func:`normalize_sigmas` before
    enumeration, so per-unit identities -- and therefore shard membership
    and store keys -- are invariant to sigma ordering and duplicates, and a
    single-sigma plan is unit-for-unit identical whichever spelling made it.
    The enumeration order is presentation only -- shard membership depends
    on each unit's identity alone, so reordering ``datasets`` never moves a
    unit between shards.
    """
    # Deferred: experiments imports this module (layering: analysis -> core).
    from repro.analysis.experiments import resolve_suite_datasets

    requested = resolve_suite_datasets(datasets, fast)
    names = tuple(dict.fromkeys(canonical_name(name) for name in requested))
    training_sigma, robustness_weight = canonical_training_knobs(
        training_sigma, robustness_weight
    )
    sigma_values = normalize_sigmas(sigmas, sigma_v)
    units: list[WorkUnit] = []
    for name in names:
        for variant in include_approximate_variants:
            units.append(
                suite_work_unit(
                    name, seed, variant, depths, taus,
                    training_sigma=training_sigma,
                    robustness_weight=robustness_weight,
                )
            )
    for name in names:
        for sigma in sigma_values:
            for depth, tau in grid_points(depths, taus):
                units.append(
                    variation_work_unit(
                        name, seed, sigma, n_trials, depth, tau,
                        resolution_bits=resolution_bits, test_size=test_size,
                        training_sigma=training_sigma,
                        robustness_weight=robustness_weight,
                    )
                )
    return SuitePlan(
        datasets=names,
        seed=int(seed),
        depths=tuple(depths),
        taus=tuple(taus),
        include_approximate_variants=tuple(
            bool(v) for v in include_approximate_variants
        ),
        sigmas=sigma_values,
        n_trials=int(n_trials),
        training_sigma=float(training_sigma),
        robustness_weight=float(robustness_weight),
        units=tuple(units),
    )
