"""ADC-aware decision-tree training (Algorithm 1, Section III-C).

The trainer grows a Gini decision tree like conventional CART, but the split
selected at each node is chosen with hardware awareness.  With ``G`` the best
Gini score at the node and ``tau`` the tolerance hyperparameter, the
candidate set ``S = {(Ii, C) | Gini(Ii, C) <= G + tau}`` is partitioned by the
ADC hardware a selection would add:

* ``S_Z`` (zero cost): the pair has already been selected at another node --
  the comparator exists, only wiring is added;
* ``S_M`` (medium cost): the input already has an ADC, but a new reference
  level (one extra comparator) is required;
* ``S_H`` (high cost): the input is used for the first time -- a whole new
  ADC channel (ladder + one comparator) is required.

The first non-empty set in that order wins.  Inside ``S_M`` / ``S_H`` the pair
with the *smallest threshold* is preferred, because lower reference levels
yield lower comparator power (Fig. 3); remaining ties are resolved by the
best Gini score and then uniformly at random, as in the paper.

``tau = 0`` leaves accuracy untouched (only equivalent-quality splits are
reordered); larger ``tau`` trades accuracy for further hardware reduction.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.mltrees.cart import GINI_TIE_TOLERANCE
from repro.mltrees.split_search import (
    SplitCandidate,
    class_histogram,
    enumerate_split_candidates,
)
from repro.mltrees.tree import DecisionTree, TreeNode


@dataclass(frozen=True)
class SplitCostSets:
    """Partition of the tolerance set ``S`` by induced ADC hardware cost."""

    zero_cost: tuple[SplitCandidate, ...]
    medium_cost: tuple[SplitCandidate, ...]
    high_cost: tuple[SplitCandidate, ...]


def partition_by_cost(
    candidates: list[SplitCandidate],
    selected_pairs: set[tuple[int, int]],
    selected_features: set[int],
) -> SplitCostSets:
    """Split ``candidates`` into the S_Z / S_M / S_H sets of Algorithm 1."""
    zero: list[SplitCandidate] = []
    medium: list[SplitCandidate] = []
    high: list[SplitCandidate] = []
    for candidate in candidates:
        pair = (candidate.feature, candidate.threshold_level)
        if pair in selected_pairs:
            zero.append(candidate)
        elif candidate.feature in selected_features:
            medium.append(candidate)
        else:
            high.append(candidate)
    return SplitCostSets(tuple(zero), tuple(medium), tuple(high))


class ADCAwareTrainer:
    """Greedy Gini trainer with the ADC-aware split selection of Algorithm 1.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (the paper sweeps 2..8).
    gini_threshold:
        The tolerance ``tau`` (the paper sweeps 0..0.03 in steps of 0.005).
    resolution_bits:
        Input quantization (4 bits in the paper).
    min_samples_leaf, min_samples_split:
        Standard growth constraints.
    seed:
        Seed of the tie-breaking RNG.
    prefer_low_power_levels:
        Secondary objective of Algorithm 1: among equally costly new
        comparators, prefer the smallest threshold (lowest-power reference
        level).  Disabling it is the ablation of Section III-C's power
        optimization -- the comparator *count* is still minimized but not the
        position of the retained levels.
    """

    def __init__(
        self,
        max_depth: int = 8,
        gini_threshold: float = 0.0,
        resolution_bits: int = 4,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        seed: int = 0,
        prefer_low_power_levels: bool = True,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if gini_threshold < 0:
            raise ValueError("the Gini tolerance tau must be >= 0")
        if resolution_bits < 1:
            raise ValueError("resolution_bits must be at least 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid minimum sample constraints")
        self.max_depth = max_depth
        self.gini_threshold = gini_threshold
        self.resolution_bits = resolution_bits
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.seed = seed
        self.prefer_low_power_levels = prefer_low_power_levels

    # ------------------------------------------------------------------ #
    # Algorithm 1 split selection
    # ------------------------------------------------------------------ #
    def _select_split(
        self,
        candidates: list[SplitCandidate],
        selected_pairs: set[tuple[int, int]],
        selected_features: set[int],
        rng: random.Random,
    ) -> SplitCandidate:
        best_gini = min(candidate.gini for candidate in candidates)
        tolerance_set = [
            c for c in candidates if c.gini <= best_gini + self.gini_threshold + 1e-15
        ]
        sets = partition_by_cost(tolerance_set, selected_pairs, selected_features)

        if sets.zero_cost:
            pool = list(sets.zero_cost)
            target_gini = min(c.gini for c in pool)
            finalists = [c for c in pool if c.gini <= target_gini + GINI_TIE_TOLERANCE]
            return rng.choice(finalists)

        pool = list(sets.medium_cost) if sets.medium_cost else list(sets.high_cost)
        if self.prefer_low_power_levels:
            # Secondary objective: smallest threshold => lowest-power comparator.
            min_level = min(c.threshold_level for c in pool)
            pool = [c for c in pool if c.threshold_level == min_level]
        target_gini = min(c.gini for c in pool)
        finalists = [c for c in pool if c.gini <= target_gini + GINI_TIE_TOLERANCE]
        return rng.choice(finalists)

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(
        self, X_levels: np.ndarray, y: np.ndarray, n_classes: int | None = None
    ) -> DecisionTree:
        """Train an ADC-aware tree on quantized features.

        The tree is grown breadth-first so that the global set of already
        selected ``(feature, threshold)`` pairs -- which defines the cost of
        future selections -- evolves in the node order of Algorithm 1.
        """
        X_levels = np.asarray(X_levels, dtype=np.int64)
        y = np.asarray(y, dtype=np.int64)
        if X_levels.ndim != 2:
            raise ValueError("X_levels must be a 2-D matrix")
        if len(X_levels) != len(y):
            raise ValueError("X_levels and y must have the same number of samples")
        if len(y) == 0:
            raise ValueError("cannot train on an empty dataset")
        if n_classes is None:
            n_classes = int(y.max()) + 1
        n_levels = 2 ** self.resolution_bits
        if X_levels.min() < 0 or X_levels.max() >= n_levels:
            raise ValueError(
                f"quantized levels must lie in [0, {n_levels - 1}] for "
                f"{self.resolution_bits}-bit inputs"
            )

        rng = random.Random(self.seed)
        selected_pairs: set[tuple[int, int]] = set()
        selected_features: set[int] = set()
        node_counter = 0

        def make_node(indices: np.ndarray, depth: int) -> TreeNode:
            nonlocal node_counter
            counts = class_histogram(y[indices], n_classes)
            node = TreeNode(
                node_id=node_counter,
                prediction=int(np.argmax(counts)),
                n_samples=int(indices.size),
                class_counts=tuple(int(c) for c in counts),
                depth=depth,
            )
            node_counter += 1
            return node

        root_indices = np.arange(len(y))
        root = make_node(root_indices, 0)
        queue: deque[tuple[TreeNode, np.ndarray]] = deque([(root, root_indices)])

        while queue:
            node, indices = queue.popleft()
            counts = np.asarray(node.class_counts)
            is_pure = int(np.count_nonzero(counts)) <= 1
            if (
                node.depth >= self.max_depth
                or is_pure
                or indices.size < self.min_samples_split
            ):
                continue
            candidates = enumerate_split_candidates(
                X_levels, y, indices, n_classes, n_levels, self.min_samples_leaf
            )
            if not candidates:
                continue
            split = self._select_split(candidates, selected_pairs, selected_features, rng)

            mask = X_levels[indices, split.feature] >= split.threshold_level
            right_indices = indices[mask]
            left_indices = indices[~mask]
            if left_indices.size == 0 or right_indices.size == 0:
                continue

            node.feature = split.feature
            node.threshold_level = split.threshold_level
            selected_pairs.add((split.feature, split.threshold_level))
            selected_features.add(split.feature)

            node.left = make_node(left_indices, node.depth + 1)
            node.right = make_node(right_indices, node.depth + 1)
            queue.append((node.left, left_indices))
            queue.append((node.right, right_indices))

        return DecisionTree(
            root=root,
            n_features=X_levels.shape[1],
            n_classes=n_classes,
            resolution_bits=self.resolution_bits,
        )
