"""ADC-aware decision-tree training (Algorithm 1, Section III-C).

The trainer grows a Gini decision tree like conventional CART, but the split
selected at each node is chosen with hardware awareness.  With ``G`` the best
Gini score at the node and ``tau`` the tolerance hyperparameter, the
candidate set ``S = {(Ii, C) | Gini(Ii, C) <= G + tau}`` is partitioned by the
ADC hardware a selection would add:

* ``S_Z`` (zero cost): the pair has already been selected at another node --
  the comparator exists, only wiring is added;
* ``S_M`` (medium cost): the input already has an ADC, but a new reference
  level (one extra comparator) is required;
* ``S_H`` (high cost): the input is used for the first time -- a whole new
  ADC channel (ladder + one comparator) is required.

The first non-empty set in that order wins.  Inside ``S_M`` / ``S_H`` the pair
with the *smallest threshold* is preferred, because lower reference levels
yield lower comparator power (Fig. 3); remaining ties are resolved by the
best Gini score and then uniformly at random, as in the paper.

``tau = 0`` leaves accuracy untouched (only equivalent-quality splits are
reordered); larger ``tau`` trades accuracy for further hardware reduction.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.mltrees.cart import GINI_TIE_TOLERANCE
from repro.mltrees.split_search import (
    CandidateTable,
    SplitCandidate,
    class_histogram,
    enumerate_split_candidates,
)
from repro.mltrees.tree import DecisionTree, TreeNode


@dataclass(frozen=True)
class SplitCostSets:
    """Partition of the tolerance set ``S`` by induced ADC hardware cost.

    Members are :class:`CandidateTable` sub-tables on the columnar path, or
    tuples of :class:`SplitCandidate` when built from an object list; both
    support ``len``, truth-testing and iteration, so cost-ordering logic is
    agnostic to the representation.
    """

    zero_cost: CandidateTable | tuple[SplitCandidate, ...]
    medium_cost: CandidateTable | tuple[SplitCandidate, ...]
    high_cost: CandidateTable | tuple[SplitCandidate, ...]


def _cost_masks(
    table: CandidateTable,
    selected_pairs: set[tuple[int, int]],
    selected_features: set[int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Boolean masks of the S_Z / S_M / S_H rows of a candidate table.

    Membership is tested through dense boolean lookup tables (the feature /
    level universe is tiny: ``n_features x 2**resolution_bits``), so the cost
    per node is one fancy-index gather per set rather than a sort-based
    ``isin``.
    """
    n = len(table)
    if selected_pairs and n:
        pair_features = [feature for feature, _ in selected_pairs]
        pair_levels = [level for _, level in selected_pairs]
        lookup = np.zeros(
            (
                max(int(table.feature.max()), max(pair_features)) + 1,
                max(int(table.threshold_level.max()), max(pair_levels)) + 1,
            ),
            dtype=bool,
        )
        lookup[pair_features, pair_levels] = True
        zero = lookup[table.feature, table.threshold_level]
    else:
        zero = np.zeros(n, dtype=bool)
    if selected_features and n:
        known = np.zeros(
            max(int(table.feature.max()), max(selected_features)) + 1, dtype=bool
        )
        known[list(selected_features)] = True
        on_known_input = known[table.feature]
    else:
        on_known_input = np.zeros(n, dtype=bool)
    medium = on_known_input & ~zero
    high = ~on_known_input & ~zero
    return zero, medium, high


def partition_by_cost(
    candidates: CandidateTable | list[SplitCandidate],
    selected_pairs: set[tuple[int, int]],
    selected_features: set[int],
) -> SplitCostSets:
    """Split ``candidates`` into the S_Z / S_M / S_H sets of Algorithm 1.

    A :class:`CandidateTable` is partitioned with vectorized membership
    tests into three sub-tables; object-based candidate lists keep the
    historical per-candidate scan and return tuples.
    """
    if isinstance(candidates, CandidateTable):
        zero, medium, high = _cost_masks(candidates, selected_pairs, selected_features)
        return SplitCostSets(
            candidates.select(zero), candidates.select(medium), candidates.select(high)
        )
    zero_list: list[SplitCandidate] = []
    medium_list: list[SplitCandidate] = []
    high_list: list[SplitCandidate] = []
    for candidate in candidates:
        pair = (candidate.feature, candidate.threshold_level)
        if pair in selected_pairs:
            zero_list.append(candidate)
        elif candidate.feature in selected_features:
            medium_list.append(candidate)
        else:
            high_list.append(candidate)
    return SplitCostSets(tuple(zero_list), tuple(medium_list), tuple(high_list))


class ADCAwareTrainer:
    """Greedy Gini trainer with the ADC-aware split selection of Algorithm 1.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (the paper sweeps 2..8).
    gini_threshold:
        The tolerance ``tau`` (the paper sweeps 0..0.03 in steps of 0.005).
    resolution_bits:
        Input quantization (4 bits in the paper).
    min_samples_leaf, min_samples_split:
        Standard growth constraints.
    seed:
        Seed of the tie-breaking RNG.
    prefer_low_power_levels:
        Secondary objective of Algorithm 1: among equally costly new
        comparators, prefer the smallest threshold (lowest-power reference
        level).  Disabling it is the ablation of Section III-C's power
        optimization -- the comparator *count* is still minimized but not the
        position of the retained levels.
    training_sigma:
        Comparator input-offset sigma assumed during training, as a fraction
        of the ADC full scale (``sigma_volts / vdd``).  With
        ``robustness_weight > 0`` the analytic expected-flip fraction of
        every candidate joins its split score, so the tolerance set and all
        tie-breaks prefer thresholds that sit in sparse sample regions
        (offset-aware training; closes the co-design loop at Algorithm 1's
        innermost layer).
    robustness_weight:
        Weight of the expected-flip penalty (``score = gini + weight *
        expected_flips``).  Active only alongside ``training_sigma > 0``
        (which defaults to 0, so a bare trainer is nominal); at ``0`` the
        trainer is bit-identical -- same trees, same RNG consumption -- to
        the nominal Algorithm 1 trainer whatever the sigma.
    """

    def __init__(
        self,
        max_depth: int = 8,
        gini_threshold: float = 0.0,
        resolution_bits: int = 4,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        seed: int = 0,
        prefer_low_power_levels: bool = True,
        training_sigma: float = 0.0,
        robustness_weight: float = 1.0,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if gini_threshold < 0:
            raise ValueError("the Gini tolerance tau must be >= 0")
        if resolution_bits < 1:
            raise ValueError("resolution_bits must be at least 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid minimum sample constraints")
        if training_sigma < 0:
            raise ValueError("training_sigma must be >= 0")
        if robustness_weight < 0:
            raise ValueError("robustness_weight must be >= 0")
        self.max_depth = max_depth
        self.gini_threshold = gini_threshold
        self.resolution_bits = resolution_bits
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.seed = seed
        self.prefer_low_power_levels = prefer_low_power_levels
        self.training_sigma = training_sigma
        self.robustness_weight = robustness_weight

    @property
    def offset_aware(self) -> bool:
        """Whether the expected-flip penalty participates in split scoring."""
        return self.robustness_weight > 0 and self.training_sigma > 0

    # ------------------------------------------------------------------ #
    # Algorithm 1 split enumeration / selection (columnar)
    # ------------------------------------------------------------------ #
    def _node_candidates(
        self,
        X_levels: np.ndarray,
        y: np.ndarray,
        indices: np.ndarray,
        n_classes: int,
        n_levels: int,
    ) -> CandidateTable:
        """Candidate splits of one node as a columnar table."""
        return enumerate_split_candidates(
            X_levels, y, indices, n_classes, n_levels, self.min_samples_leaf,
            flip_sigma=self.training_sigma if self.offset_aware else None,
        )

    def _split_scores(self, candidates: CandidateTable) -> np.ndarray:
        """Per-candidate split score (Gini, plus the expected-flip penalty).

        With ``robustness_weight == 0`` this returns the Gini column itself,
        keeping the nominal path bit-identical to the pre-offset-aware
        trainer.
        """
        if not self.offset_aware:
            return candidates.gini
        return candidates.gini + self.robustness_weight * candidates.expected_flips

    def _select_split(
        self,
        candidates: CandidateTable,
        selected_pairs: set[tuple[int, int]],
        selected_features: set[int],
        rng: random.Random,
    ) -> SplitCandidate:
        """Algorithm 1 selection as array reductions over the candidate table.

        Every filter (tolerance set, cost partition, low-power level, score
        ties) preserves the table's (feature, threshold) order and the final
        tie-break draws once over the finalist set, so the RNG stream -- and
        therefore the grown tree -- is bit-identical to the historical
        object-list implementation whenever the expected-flip penalty is
        inactive.  When it is active, the same structure applies to the
        penalized score ``gini + robustness_weight * expected_flips``: the
        tolerance set and every tie-break then prefer thresholds in sparse
        sample regions.
        """
        scores = self._split_scores(candidates)
        tolerance_set = candidates.select(
            scores <= scores.min() + self.gini_threshold + 1e-15
        )
        sets = partition_by_cost(tolerance_set, selected_pairs, selected_features)

        if sets.zero_cost:
            pool = sets.zero_cost
        else:
            pool = sets.medium_cost if sets.medium_cost else sets.high_cost
            if self.prefer_low_power_levels:
                # Secondary objective: smallest threshold => lowest-power comparator.
                pool = pool.select(pool.threshold_level == pool.threshold_level.min())
        pool_scores = self._split_scores(pool)
        finalists = np.nonzero(pool_scores <= pool_scores.min() + GINI_TIE_TOLERANCE)[0]
        return pool.candidate(rng.choice(finalists.tolist()))

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(
        self, X_levels: np.ndarray, y: np.ndarray, n_classes: int | None = None
    ) -> DecisionTree:
        """Train an ADC-aware tree on quantized features.

        The tree is grown breadth-first so that the global set of already
        selected ``(feature, threshold)`` pairs -- which defines the cost of
        future selections -- evolves in the node order of Algorithm 1.
        """
        X_levels = np.asarray(X_levels, dtype=np.int64)
        y = np.asarray(y, dtype=np.int64)
        if X_levels.ndim != 2:
            raise ValueError("X_levels must be a 2-D matrix")
        if len(X_levels) != len(y):
            raise ValueError("X_levels and y must have the same number of samples")
        if len(y) == 0:
            raise ValueError("cannot train on an empty dataset")
        if n_classes is None:
            n_classes = int(y.max()) + 1
        n_levels = 2 ** self.resolution_bits
        if X_levels.min() < 0 or X_levels.max() >= n_levels:
            raise ValueError(
                f"quantized levels must lie in [0, {n_levels - 1}] for "
                f"{self.resolution_bits}-bit inputs"
            )

        rng = random.Random(self.seed)
        selected_pairs: set[tuple[int, int]] = set()
        selected_features: set[int] = set()
        node_counter = 0

        def make_node(indices: np.ndarray, depth: int) -> TreeNode:
            nonlocal node_counter
            counts = class_histogram(y[indices], n_classes)
            node = TreeNode(
                node_id=node_counter,
                prediction=int(np.argmax(counts)),
                n_samples=int(indices.size),
                class_counts=tuple(int(c) for c in counts),
                depth=depth,
            )
            node_counter += 1
            return node

        root_indices = np.arange(len(y))
        root = make_node(root_indices, 0)
        queue: deque[tuple[TreeNode, np.ndarray]] = deque([(root, root_indices)])

        while queue:
            node, indices = queue.popleft()
            counts = np.asarray(node.class_counts)
            is_pure = int(np.count_nonzero(counts)) <= 1
            if (
                node.depth >= self.max_depth
                or is_pure
                or indices.size < self.min_samples_split
            ):
                continue
            candidates = self._node_candidates(X_levels, y, indices, n_classes, n_levels)
            if not candidates:
                continue
            split = self._select_split(candidates, selected_pairs, selected_features, rng)

            mask = X_levels[indices, split.feature] >= split.threshold_level
            right_indices = indices[mask]
            left_indices = indices[~mask]
            if left_indices.size == 0 or right_indices.size == 0:
                continue

            node.feature = split.feature
            node.threshold_level = split.threshold_level
            selected_pairs.add((split.feature, split.threshold_level))
            selected_features.add(split.feature)

            node.left = make_node(left_indices, node.depth + 1)
            node.right = make_node(right_indices, node.depth + 1)
            queue.append((node.left, left_indices))
            queue.append((node.right, right_indices))

        return DecisionTree(
            root=root,
            n_features=X_levels.shape[1],
            n_classes=n_classes,
            resolution_bits=self.resolution_bits,
        )
