"""Content-addressed on-disk store for experiment results.

:class:`ResultStore` persists expensive experiment outputs (one
:class:`~repro.core.codesign.CoDesignResult` per benchmark configuration)
under a key derived from *what* was computed -- dataset name, seed, grid,
technology, code version -- rather than *when*.  Unlike the in-process
``lru_cache`` it replaces, the store survives interpreter restarts and is
shared between processes and CI jobs: a nightly run warms the cache that the
next benchmark script reads.

Keys are SHA-256 digests of a canonical JSON rendering of the key fields, so
equivalent configurations hash identically no matter the argument order or
container type (list vs tuple), and any change to the key fields -- including
the code version baked in by default -- addresses fresh entries, which makes
stale results from older code invisible rather than wrong.

Values are stored as individual pickle files written atomically
(``os.replace``), so concurrent writers on the same filesystem never expose
partial entries.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import re
import tarfile
import tempfile
import time
import uuid
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path

#: Bump when the *stored payload* layout changes incompatibly (independent of
#: the package version, which already participates in the key).
STORE_SCHEMA_VERSION = 1

#: A ``*.tmp`` file younger than this is presumed to be a concurrent writer's
#: in-flight entry (mkstemp -> os.replace window) and is never swept.
_TMP_GRACE_S = 3600.0

#: Entry member names allowed out of an archive: exactly one SHA-256 key plus
#: the ``.pkl`` suffix -- flat, no path separators, so a crafted archive can
#: never write outside the staging directory.
_ARCHIVE_ENTRY_RE = re.compile(r"[0-9a-f]{64}\.pkl")


def code_version() -> str:
    """Version tag baked into every key: package version + store schema."""
    import repro  # deferred: repro/__init__ imports this module transitively

    return f"{repro.__version__}/schema{STORE_SCHEMA_VERSION}"


def _canonical(value):
    """Reduce ``value`` to JSON-serializable primitives, deterministically.

    Tuples and lists collapse to the same representation, dict keys are
    sorted, and dataclasses (e.g. the technology object) are expanded to
    ``class name + field dict`` so two equal configurations always produce
    the same canonical form.  Non-dataclass objects may opt in by exposing a
    ``canonical_form()`` method returning primitives (e.g. the cell
    library); anything else falls back to its ``repr``, which must then be
    stable across processes.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    canonical_form = getattr(value, "canonical_form", None)
    if callable(canonical_form):
        return {
            "__canonical__": type(value).__qualname__,
            "value": _canonical(canonical_form()),
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_canonical(item) for item in value), key=repr)
    if isinstance(value, dict):
        return {str(key): _canonical(value[key]) for key in sorted(value, key=str)}
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__qualname__,
            **{f.name: _canonical(getattr(value, f.name)) for f in fields(value)},
        }
    # Last resort: a stable repr (covers e.g. numpy scalars via their repr).
    return repr(value)


def content_digest(**fields) -> str:
    """SHA-256 of the canonical JSON form of ``fields`` -- no version mixing.

    This is the raw content address: two equal configurations digest
    identically across processes *and across code versions*.  The model
    registry (:mod:`repro.serve.registry`) keys artifacts on it, so a
    promoted model keeps its identity over package upgrades.  Cache keys,
    which must *not* survive upgrades, go through :func:`make_key` instead.
    """
    rendered = json.dumps(_canonical(fields), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def make_key(**key_fields) -> str:
    """Content-address a configuration: SHA-256 of its canonical JSON form.

    The current :func:`code_version` is mixed in unless the caller provides
    an explicit ``code_version`` field, so results computed by older code
    never alias results of the current code.
    """
    key_fields.setdefault("code_version", code_version())
    return content_digest(**key_fields)


@dataclass
class StoreStats:
    """Hit/miss/store counters of one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.stores = 0


@dataclass(frozen=True)
class StoreDiskStats:
    """On-disk footprint of a :class:`ResultStore` directory.

    Attributes
    ----------
    n_entries / total_bytes:
        Count and cumulative size of the stored entries.
    oldest_age_s / newest_age_s:
        Age (seconds since last modification) of the oldest and newest
        entries; ``None`` when the store is empty.
    """

    n_entries: int
    total_bytes: int
    oldest_age_s: float | None = None
    newest_age_s: float | None = None


@dataclass(frozen=True)
class MergeReport:
    """Outcome of folding one store (or archive) into another.

    Attributes
    ----------
    merged / skipped:
        Entries copied in vs. entries already present (content-address
        dedup: same key means same result, so duplicates are never
        re-copied).
    stats_merged:
        Whether the source's lifetime hit/miss accounting was absorbed into
        the target's (False when the source never recorded any).
    """

    merged: int
    skipped: int
    stats_merged: bool

    @property
    def source_entries(self) -> int:
        """Total entries the source held (merged + skipped)."""
        return self.merged + self.skipped


def default_cache_dir() -> Path:
    """Default on-disk location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "results"


class ResultStore:
    """Content-addressed pickle store on the local filesystem.

    Parameters
    ----------
    cache_dir:
        Directory holding the entries (created on first write).  Defaults to
        :func:`default_cache_dir`, so separate processes of the same user
        share one store out of the box; CI jobs point it at a workspace
        directory via ``--cache-dir`` / ``$REPRO_CACHE_DIR``.
    touch_on_get:
        When True (default), :meth:`get` refreshes the entry's mtime on every
        hit so LRU eviction tracks last *access*.  Pass False for a fast-read
        store that must never write to the cache directory -- the serving hot
        path (:mod:`repro.serve`) uses this so a scorer leaves zero write
        traffic (and zero mtime churn) on a shared cache while serving.

    Examples
    --------
    >>> store = ResultStore(cache_dir="/tmp/repro-cache")
    >>> key = store.make_key(dataset="seeds", seed=0, depths=(2, 3), taus=(0.0,))
    >>> store.get(key) is None   # first process: miss ...
    True
    >>> store.put(key, {"accuracy": 0.9})
    >>> store.get(key)           # ... any later process: hit
    {'accuracy': 0.9}
    >>> store.stats.hits, store.stats.misses
    (1, 1)
    """

    def __init__(
        self, cache_dir: str | Path | None = None, *, touch_on_get: bool = True
    ):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        if self.cache_dir.exists() and not self.cache_dir.is_dir():
            raise ValueError(
                f"cache_dir {str(self.cache_dir)!r} exists and is not a directory"
            )
        self.touch_on_get = touch_on_get
        self.stats = StoreStats()
        #: Snapshot of the counters at the last :meth:`flush_stats`, so the
        #: flush only adds the delta accumulated since.
        self._flushed = StoreStats()
        #: Search-trial accounting of this instance (trials resolved from
        #: cache vs. freshly trained), flushed alongside the hit/miss
        #: counters.  Store-local: merges never absorb another store's
        #: search counters, because a trial "trained here" is a property of
        #: this store's history, not of the entries it happens to hold.
        self._search = {"from_cache": 0, "trained": 0}
        self._search_flushed = {"from_cache": 0, "trained": 0}

    # ------------------------------------------------------------------ #
    # keys and paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def make_key(**key_fields) -> str:
        """See :func:`make_key` (exposed on the class for convenience)."""
        return make_key(**key_fields)

    def path_for(self, key: str) -> Path:
        """Filesystem path of the entry for ``key``."""
        return self.cache_dir / f"{key}.pkl"

    # ------------------------------------------------------------------ #
    # store operations
    # ------------------------------------------------------------------ #
    def get(self, key: str, default=None):
        """Load the entry for ``key``, counting a hit or a miss.

        Unreadable entries (truncated writes from killed processes, pickles
        of incompatible classes) count as misses and are evicted.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return default
        except Exception:
            self.invalidate(key)
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        if self.touch_on_get:
            try:
                # Mark recency so LRU eviction (prune_to_size) and age pruning
                # keep entries that are still being *read*, not just written.
                os.utime(path)
            except OSError:  # read-only store: recency tracking degrades silently
                pass
        return value

    def put(self, key: str, value) -> Path:
        """Persist ``value`` under ``key`` atomically; returns the entry path."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        self.stats.stores += 1
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def invalidate(self, key: str) -> bool:
        """Drop the entry for ``key``; True when something was removed."""
        try:
            os.unlink(self.path_for(key))
            return True
        except (FileNotFoundError, NotADirectoryError):
            return False

    def clear(self) -> int:
        """Drop every entry; returns the number of removed entries.

        Also sweeps ``*.tmp`` files orphaned by writers killed between
        ``mkstemp`` and ``os.replace`` (those do not count as entries).
        """
        removed = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:
                    pass
            for path in self.cache_dir.glob("*.tmp"):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.pkl"))

    # ------------------------------------------------------------------ #
    # lifecycle tooling (repro.cli cache)
    # ------------------------------------------------------------------ #
    def disk_stats(self) -> StoreDiskStats:
        """Entry count, cumulative size and age range of the on-disk store."""
        n_entries = 0
        total_bytes = 0
        oldest: float | None = None
        newest: float | None = None
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.pkl"):
                try:
                    stat = path.stat()
                except FileNotFoundError:  # concurrently evicted
                    continue
                n_entries += 1
                total_bytes += stat.st_size
                oldest = stat.st_mtime if oldest is None else min(oldest, stat.st_mtime)
                newest = stat.st_mtime if newest is None else max(newest, stat.st_mtime)
        now = time.time()
        return StoreDiskStats(
            n_entries=n_entries,
            total_bytes=total_bytes,
            oldest_age_s=None if oldest is None else max(0.0, now - oldest),
            newest_age_s=None if newest is None else max(0.0, now - newest),
        )

    def prune_older_than(self, max_age_s: float) -> int:
        """Drop entries untouched for more than ``max_age_s`` seconds.

        Returns the number of removed entries.  Orphaned ``*.tmp`` files past
        the age limit are swept as well (not counted).
        """
        if max_age_s < 0:
            raise ValueError("max_age_s must be >= 0")
        removed = 0
        cutoff = time.time() - max_age_s
        if self.cache_dir.is_dir():
            for pattern, counted in (("*.pkl", True), ("*.tmp", False)):
                for path in self.cache_dir.glob(pattern):
                    try:
                        if path.stat().st_mtime < cutoff:
                            path.unlink()
                            removed += int(counted)
                    except FileNotFoundError:
                        continue
        return removed

    def prune_to_size(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until the store fits ``max_bytes``.

        Recency is the entry's modification time, which :meth:`get` refreshes
        on every hit -- so eviction order is by last *access*, keeping a
        long-lived CI cache's working set warm while bounding its footprint.
        Stale orphaned ``*.tmp`` files are swept first (not counted); fresh
        ones are left alone, because they may be the in-flight writes of a
        concurrent :meth:`put` on a shared store.  Returns the number of
        removed entries.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if not self.cache_dir.is_dir():
            return 0
        tmp_cutoff = time.time() - _TMP_GRACE_S
        for path in self.cache_dir.glob("*.tmp"):
            try:
                if path.stat().st_mtime < tmp_cutoff:
                    path.unlink()
            except FileNotFoundError:
                pass
        entries: list[tuple[float, int, Path]] = []
        total_bytes = 0
        for path in self.cache_dir.glob("*.pkl"):
            try:
                stat = path.stat()
            except FileNotFoundError:  # concurrently evicted
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total_bytes += stat.st_size
        entries.sort(key=lambda entry: (entry[0], str(entry[2])))
        removed = 0
        for _, size, path in entries:
            if total_bytes <= max_bytes:
                break
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
            # A concurrently removed entry no longer occupies space either way.
            total_bytes -= size
        return removed

    # ------------------------------------------------------------------ #
    # persistent hit/miss accounting
    # ------------------------------------------------------------------ #
    @property
    def _stats_path(self) -> Path:
        return self.cache_dir / "_stats.json"

    def _read_stats_file(self) -> dict:
        """The raw ``_stats.json`` object ({} when absent or corrupt)."""
        try:
            with open(self._stats_path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
            return raw if isinstance(raw, dict) else {}
        except (OSError, ValueError):
            return {}

    def _read_lifetime_stats(self) -> dict[str, int]:
        """This store's *own* persisted counters (merged sources excluded)."""
        raw = self._read_stats_file()
        try:
            return {
                field: int(raw.get(field, 0)) for field in ("hits", "misses", "stores")
            }
        except (ValueError, TypeError):
            return {"hits": 0, "misses": 0, "stores": 0}

    def _read_sources(self) -> dict[str, dict[str, int]]:
        """Per-source counters absorbed by :meth:`merge_from`, keyed by store id."""
        raw = self._read_stats_file().get("sources")
        sources: dict[str, dict[str, int]] = {}
        if isinstance(raw, dict):
            for source_id, counters in raw.items():
                if not isinstance(counters, dict):
                    continue
                try:
                    sources[str(source_id)] = {
                        field: int(counters.get(field, 0))
                        for field in ("hits", "misses", "stores")
                    }
                except (ValueError, TypeError):
                    continue
        return sources

    def _write_stats_file(self, payload: dict) -> bool:
        """Atomically rewrite ``_stats.json``; False when the store is read-only."""
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        except OSError:
            return False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, self._stats_path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return False
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        return True

    def _persistent_store_id(self, create: bool = False) -> str | None:
        """Stable identity of this store directory, persisted in ``_stats.json``.

        The id is what makes stats aggregation across :meth:`merge_from`
        *idempotent*: a source's counters are recorded under its id
        (replacing any earlier record), so re-merging the same shard store
        never double-counts.  Generated lazily on first need; ``None`` on a
        read-only store that never had one (its counters then simply cannot
        be aggregated).
        """
        raw = self._read_stats_file()
        store_id = raw.get("store_id")
        if isinstance(store_id, str) and store_id:
            return store_id
        if not create:
            return None
        store_id = uuid.uuid4().hex
        payload = dict(raw)
        payload["store_id"] = store_id
        if not self._write_stats_file(payload):
            return None
        return store_id

    def _read_search_stats(self) -> dict[str, int]:
        """This store's persisted search-trial counters ({0, 0} when absent)."""
        raw = self._read_stats_file().get("search")
        counters = {"from_cache": 0, "trained": 0}
        if isinstance(raw, dict):
            for field in counters:
                try:
                    counters[field] = int(raw.get(field, 0))
                except (ValueError, TypeError):
                    counters[field] = 0
        return counters

    def record_search_stats(self, *, from_cache: int = 0, trained: int = 0) -> None:
        """Count search trials resolved from cache vs. freshly trained.

        :class:`repro.search.study.Study` calls this once per run; the
        counters persist to ``_stats.json`` on the next :meth:`flush_stats`
        and surface in ``repro.cli cache stats --json`` under ``search``,
        which is what CI asserts warm-start hit rates against.
        """
        if from_cache < 0 or trained < 0:
            raise ValueError("search counters must be >= 0")
        self._search["from_cache"] += int(from_cache)
        self._search["trained"] += int(trained)

    def lifetime_search_stats(self) -> dict[str, int]:
        """Lifetime search-trial counters: flushed file + unflushed deltas.

        Unlike :meth:`lifetime_stats`, merged source stores do not
        contribute -- the counters describe studies run *against this
        store*, not against the shards folded into it.
        """
        totals = self._read_search_stats()
        for field, delta in self._unflushed_search_delta().items():
            totals[field] += max(0, delta)
        return totals

    def _unflushed_search_delta(self) -> dict[str, int]:
        return {
            field: self._search[field] - self._search_flushed[field]
            for field in ("from_cache", "trained")
        }

    def _unflushed_delta(self) -> dict[str, int]:
        return {
            "hits": self.stats.hits - self._flushed.hits,
            "misses": self.stats.misses - self._flushed.misses,
            "stores": self.stats.stores - self._flushed.stores,
        }

    def flush_stats(self) -> dict[str, int]:
        """Merge this instance's counters into the store's lifetime totals.

        The totals live in ``_stats.json`` next to the entries, so hit/miss
        rates accumulate across processes and CI jobs (``repro.cli cache
        stats`` reports them).  Only the counts accumulated since the last
        flush are added (the in-memory :attr:`stats` keep counting
        untouched); the store id and any counters absorbed from merged
        source stores are preserved.  Concurrent flushes are
        last-writer-wins, which keeps the totals approximate but never
        corrupt.  On a read-only store (e.g. a shared CI cache mounted
        read-only) accounting degrades to the in-memory counters instead of
        failing the lookup.  Returns the merged lifetime totals (merged
        sources included).
        """
        raw = self._read_stats_file()
        own = self._read_lifetime_stats()
        for field, delta in self._unflushed_delta().items():
            own[field] += max(0, delta)
        search = self._read_search_stats()
        for field, delta in self._unflushed_search_delta().items():
            search[field] += max(0, delta)
        sources = self._read_sources()
        totals = dict(own)
        for counters in sources.values():
            for field in totals:
                totals[field] += counters[field]
        payload: dict = dict(own)
        if any(search.values()):
            payload["search"] = search
        if sources:
            payload["sources"] = sources
        store_id = raw.get("store_id")
        if isinstance(store_id, str) and store_id:
            payload["store_id"] = store_id
        if self._write_stats_file(payload):
            self._flushed = StoreStats(
                self.stats.hits, self.stats.misses, self.stats.stores
            )
            self._search_flushed = dict(self._search)
        return totals

    def lifetime_stats(self) -> dict[str, int]:
        """Lifetime hit/miss/store totals across every process and merged shard.

        Flushed file + this instance's unflushed counters + the counters of
        every source store absorbed by :meth:`merge_from`.
        """
        totals = self._read_lifetime_stats()
        for field, delta in self._unflushed_delta().items():
            totals[field] += max(0, delta)
        for counters in self._read_sources().values():
            for field in totals:
                totals[field] += counters[field]
        return totals

    # ------------------------------------------------------------------ #
    # merge and transport (sharded CI runs)
    # ------------------------------------------------------------------ #
    def merge_from(self, other: "ResultStore") -> MergeReport:
        """Fold another store's entries and accounting into this one.

        Entries are content-addressed, so the merge is a pure union: keys
        already present are skipped (same key, same result -- recomputing or
        re-copying would change nothing), new keys are copied atomically.
        The source's *persisted* lifetime counters are recorded under its
        store id (replacing any earlier record of the same source, which
        makes re-merges idempotent) and surface in this store's
        :meth:`lifetime_stats`; flush the source first if its in-memory
        counters matter.  This is how a CI assemble job folds N shard
        stores into the one it renders from.
        """
        other_dir = Path(other.cache_dir)
        if other_dir.resolve() == self.cache_dir.resolve():
            raise ValueError("cannot merge a result store into itself")
        merged = skipped = 0
        if other_dir.is_dir():
            entries = sorted(other_dir.glob("*.pkl"))
            if entries:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
            for path in entries:
                dest = self.cache_dir / path.name
                if dest.exists():
                    skipped += 1
                    continue
                fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(path.read_bytes())
                    os.replace(tmp_name, dest)
                except BaseException:
                    try:
                        os.unlink(tmp_name)
                    except FileNotFoundError:
                        pass
                    raise
                merged += 1
        stats_merged = self._absorb_source_stats(other)
        return MergeReport(merged=merged, skipped=skipped, stats_merged=stats_merged)

    def _absorb_source_stats(self, other: "ResultStore") -> bool:
        """Record ``other``'s persisted counters under its store id (idempotent)."""
        incoming = dict(other._read_sources())
        own = other._read_lifetime_stats()
        if any(own.values()):
            source_id = other._persistent_store_id(create=True)
            if source_id is not None:
                incoming[source_id] = own
        if not incoming:
            return False
        my_id = self._persistent_store_id()
        # Never record ourselves as our own source (A -> B -> A round trips).
        if my_id is not None:
            incoming.pop(my_id, None)
        if not incoming:
            return False
        sources = self._read_sources()
        if all(sources.get(sid) == counters for sid, counters in incoming.items()):
            return True  # already absorbed: re-merge changes nothing
        sources.update(incoming)
        raw = self._read_stats_file()
        payload: dict = self._read_lifetime_stats()
        search = self._read_search_stats()
        if any(search.values()):
            payload["search"] = search
        payload["sources"] = sources
        store_id = raw.get("store_id")
        if isinstance(store_id, str) and store_id:
            payload["store_id"] = store_id
        return self._write_stats_file(payload)

    def export_archive(self, path: str | Path) -> Path:
        """Pack the whole store into a portable gzipped tar at ``path``.

        The archive holds one flat member per entry (``<key>.pkl``), the
        stats file, and a ``manifest.json`` recording the payload schema --
        everything :meth:`import_archive` needs to validate and fold the
        store into another one.  Written atomically; entry order, modes and
        timestamps are normalized so equal stores produce equal archives.
        This is the transport format shard CI jobs upload as artifacts.
        """
        path = Path(path)
        self.flush_stats()  # persist this instance's counters for the trip
        store_id = self._persistent_store_id(create=True)
        entries = (
            sorted(self.cache_dir.glob("*.pkl")) if self.cache_dir.is_dir() else []
        )
        manifest = {
            "format": "repro-result-store",
            "schema": STORE_SCHEMA_VERSION,
            "n_entries": len(entries),
            "code_version": code_version(),
            "store_id": store_id,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                with tarfile.open(fileobj=handle, mode="w:gz") as tar:

                    def add_member(name: str, data: bytes) -> None:
                        info = tarfile.TarInfo(name=name)
                        info.size = len(data)
                        info.mtime = 0
                        info.mode = 0o644
                        tar.addfile(info, io.BytesIO(data))

                    add_member(
                        "manifest.json",
                        json.dumps(manifest, sort_keys=True).encode("utf-8"),
                    )
                    if self._stats_path.is_file():
                        add_member("_stats.json", self._stats_path.read_bytes())
                    for entry in entries:
                        add_member(entry.name, entry.read_bytes())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        return path

    def import_archive(self, path: str | Path) -> MergeReport:
        """Unpack an :meth:`export_archive` file and merge it into this store.

        Validates the manifest (format and payload schema must match this
        code) and stages only well-formed members -- ``<sha256>.pkl`` entry
        names and ``_stats.json``, nothing with path separators -- before
        delegating to :meth:`merge_from`, so a crafted archive can neither
        escape the staging directory nor inject foreign files.  Idempotent
        like the merge it wraps.
        """
        path = Path(path)
        try:
            tar = tarfile.open(path, mode="r:gz")
        except tarfile.TarError as exc:
            raise ValueError(f"{path}: not a result-store archive ({exc})") from exc
        with tar, tempfile.TemporaryDirectory() as tmp_dir:
            members = {m.name: m for m in tar.getmembers() if m.isfile()}
            manifest_member = members.get("manifest.json")
            if manifest_member is None:
                raise ValueError(
                    f"{path}: not a result-store archive (no manifest.json)"
                )
            try:
                manifest = json.loads(tar.extractfile(manifest_member).read())
            except ValueError as exc:
                raise ValueError(f"{path}: unreadable manifest.json") from exc
            if (
                not isinstance(manifest, dict)
                or manifest.get("format") != "repro-result-store"
            ):
                raise ValueError(f"{path}: not a result-store archive")
            schema = manifest.get("schema")
            if schema != STORE_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}: archive payload schema {schema!r} does not match "
                    f"this code (schema {STORE_SCHEMA_VERSION})"
                )
            staging = Path(tmp_dir)
            for name, member in members.items():
                if name == "_stats.json" or _ARCHIVE_ENTRY_RE.fullmatch(name):
                    (staging / name).write_bytes(tar.extractfile(member).read())
            return self.merge_from(ResultStore(cache_dir=staging))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore(cache_dir={str(self.cache_dir)!r})"
