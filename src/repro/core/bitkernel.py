"""Bit-parallel packed-uint64 inference kernels for unary decision trees.

The paper's core observation (Section III-A) is that a unary/thermometer-coded
decision tree *is* two-level logic: every root-to-leaf path is one AND cube
over unary digits and every class label is an OR of its cubes.  The batch
engine of :class:`~repro.core.unary_tree.UnaryDecisionTree` already evaluates
that logic, but as float/boolean ndarray broadcasts -- one fancy-indexed
gather and reduction per cube over an ``(n_samples, n_digits)`` matrix.

This module compiles the same logic down to machine words:

1. **Cube extraction** -- the tree's minimized per-class
   :class:`~repro.circuits.two_level.SumOfProducts` (the tree is the oracle;
   the SOP is the intermediate form) becomes, per class, a list of
   ``(positive digit columns, negated digit columns)`` index pairs.
2. **Word packing** -- the digit matrix is packed column-wise into ``uint64``
   words (:func:`~repro.adc.thermometer.pack_digit_matrix`), 64 samples per
   word, LSB = lowest sample index.
3. **Evaluation** -- each cube is a chain of bitwise AND over its digit
   words (complemented for negated literals); a class fires where any of its
   cubes does (bitwise OR); the winning label per sample is the *lowest*
   firing class, resolved first-wins in the packed domain.

The result is bit-identical to
:meth:`~repro.core.unary_tree.UnaryDecisionTree.predict_digit_matrix` /
``predict_from_digits_batch`` -- including the ``ValueError`` raised when a
digit assignment is inconsistent with a thermometer code -- while the hot
loop touches ``n_samples / 64`` words per literal instead of ``n_samples``
bools per literal.  See ``docs/KERNELS.md`` for the layout and tie-break
semantics, and ``benchmarks/bench_inference_throughput.py`` for the measured
gain over the broadcast path.

Compiled kernels are cached on the tree instance, so repeated evaluation
calls (the explorer grid, a scoring service) compile once per trained tree:
use :func:`compile_tree_kernel` rather than constructing
:class:`CompiledTreeKernel` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adc.thermometer import (
    WORD_BITS,
    pack_digit_matrix,
    packed_tail_mask,
    quantize_array_to_levels,
)
from repro.mltrees.tree import DecisionTree

_FULL_WORD = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

#: Cache attribute attached to the *tree* instance (trees are shared by
#: design points, suite results and the store; the kernel rides along).
_CACHE_ATTR = "_compiled_bitkernel"


@dataclass(frozen=True)
class PackedDigitBatch:
    """A digit matrix packed for word-parallel evaluation.

    ``words`` has shape ``(n_digits, n_words)`` with the layout of
    :func:`~repro.adc.thermometer.pack_digit_matrix`; ``n_samples`` recovers
    the ragged tail (batches need not be multiples of 64).
    """

    words: np.ndarray
    n_samples: int

    @property
    def n_words(self) -> int:
        """Number of 64-bit words per digit column."""
        return self.words.shape[1]


class CompiledTreeKernel:
    """A trained tree compiled into per-class packed-word cube masks.

    Construction extracts the minimized sum-of-products label logic from the
    tree (via :class:`~repro.core.unary_tree.UnaryDecisionTree`, reusing
    :class:`~repro.circuits.two_level.SumOfProducts` as the intermediate
    form) and resolves every literal to its digit-matrix column, exactly as
    the batch engine does -- the two paths evaluate the same cubes over the
    same columns and therefore agree bit for bit.
    """

    def __init__(self, tree: DecisionTree):
        # Local import: unary_tree imports circuit modules; keeping it out of
        # module scope lets the ADC/thermometer layer import this module.
        from repro.core.unary_tree import UnaryDecisionTree

        self.tree = tree
        unary = UnaryDecisionTree(tree)
        self.n_classes = unary.n_classes
        self.resolution_bits = unary.resolution_bits
        #: ``(feature, level)`` per digit column, in digit-matrix order.
        self.comparators = unary.comparators
        self._features = np.array([f for f, _ in self.comparators], dtype=np.intp)
        self._levels = np.array([k for _, k in self.comparators], dtype=np.int64)
        digit_index = {name: i for i, name in enumerate(unary.digit_variables())}
        #: per class, per cube: (positive column indices, negated column indices)
        self.cubes: list[list[tuple[np.ndarray, np.ndarray]]] = []
        for label in range(self.n_classes):
            compiled: list[tuple[np.ndarray, np.ndarray]] = []
            for term in unary.label_logic[label].terms:
                positive = sorted(digit_index[lit.name] for lit in term if lit.positive)
                negated = sorted(digit_index[lit.name] for lit in term if not lit.positive)
                compiled.append(
                    (np.array(positive, dtype=np.intp), np.array(negated, dtype=np.intp))
                )
            self.cubes.append(compiled)

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    @property
    def n_digits(self) -> int:
        """Digit-matrix columns the kernel consumes (= retained comparators)."""
        return len(self.comparators)

    @property
    def n_cubes(self) -> int:
        """Total AND cubes across all class labels."""
        return sum(len(compiled) for compiled in self.cubes)

    @property
    def n_literals(self) -> int:
        """Total literals (word-AND operations per evaluated word column)."""
        return sum(
            len(positive) + len(negated)
            for compiled in self.cubes
            for positive, negated in compiled
        )

    # ------------------------------------------------------------------ #
    # packing
    # ------------------------------------------------------------------ #
    def digit_matrix_from_levels(self, X_levels: np.ndarray) -> np.ndarray:
        """Comparator outputs of a quantized-sample matrix (broadcast compare)."""
        X_levels = np.asarray(X_levels)
        if X_levels.ndim != 2:
            raise ValueError("expected a 2-D matrix of quantized samples")
        return X_levels[:, self._features] >= self._levels[np.newaxis, :]

    def pack_digit_matrix(self, digits: np.ndarray) -> PackedDigitBatch:
        """Pack an ``(n_samples, n_digits)`` digit matrix into word columns."""
        digits = np.asarray(digits, dtype=bool)
        if digits.ndim != 2 or digits.shape[1] != self.n_digits:
            raise ValueError(
                f"expected an (n_samples, {self.n_digits}) digit matrix, "
                f"got {digits.shape}"
            )
        return PackedDigitBatch(pack_digit_matrix(digits), digits.shape[0])

    def pack_levels(self, X_levels: np.ndarray) -> PackedDigitBatch:
        """Quantized samples straight to packed words (compare + pack)."""
        return self.pack_digit_matrix(self.digit_matrix_from_levels(X_levels))

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def fired_words(self, batch: PackedDigitBatch) -> np.ndarray:
        """``(n_classes, n_words)`` packed firing masks of every label function.

        Bit ``s % 64`` of word ``fired[label, s // 64]`` is set when label
        ``label``'s sum-of-products fires for sample ``s``.  Padding bits of
        the final word are forced to zero (a complemented word would
        otherwise leak phantom samples into the tail).
        """
        words = batch.words
        n_words = batch.n_words
        fired = np.zeros((self.n_classes, n_words), dtype=np.uint64)
        # Two scratch word vectors, reused across every cube: the AND chains
        # and OR chains run in place on them, so the hot loop performs zero
        # allocations and no fancy-indexed gathers -- each literal is one
        # streaming binop over cache-resident words.
        cube = np.empty(n_words, dtype=np.uint64)
        folded = np.empty(n_words, dtype=np.uint64)
        for label, compiled in enumerate(self.cubes):
            acc_out = fired[label]
            for positive, negated in compiled:
                if positive.size:
                    np.copyto(cube, words[positive[0]])
                    for column in positive[1:]:
                        np.bitwise_and(cube, words[column], out=cube)
                else:  # empty/negated-only cube starts from constant true
                    cube[:] = _FULL_WORD
                if negated.size:
                    # De Morgan: AND of complements == complemented OR.
                    np.copyto(folded, words[negated[0]])
                    for column in negated[1:]:
                        np.bitwise_or(folded, words[column], out=folded)
                    np.invert(folded, out=folded)
                    np.bitwise_and(cube, folded, out=cube)
                np.bitwise_or(acc_out, cube, out=acc_out)
            # complemented words set the zero padding of the final word;
            # mask the tail back out so phantom samples never fire
            if n_words:
                acc_out[-1] &= packed_tail_mask(batch.n_samples)
        return fired

    def predict_packed(self, batch: PackedDigitBatch) -> np.ndarray:
        """Predict classes from packed words: lowest firing label per sample.

        Raises ``ValueError`` when any sample fires no label function
        (inconsistent with a thermometer code), mirroring the batch engine.
        """
        fired = self.fired_words(batch)
        n_samples = batch.n_samples
        # First-wins in the packed domain == lowest firing label (argmax on
        # the boolean fired matrix), the batch engine's tie-break rule.  The
        # winning label index is assembled as binary bit-planes while still
        # packed -- log2(n_classes) word vectors instead of one scatter per
        # class -- and unpacked once at the end.
        n_label_bits = max(1, (self.n_classes - 1).bit_length())
        planes = np.zeros((n_label_bits, batch.n_words), dtype=np.uint64)
        remaining = np.full(batch.n_words, _FULL_WORD, dtype=np.uint64)
        if batch.n_words:
            remaining[-1] = packed_tail_mask(n_samples)
        for label in range(self.n_classes):
            take = fired[label] & remaining
            for bit in range(n_label_bits):
                if (label >> bit) & 1:
                    planes[bit] |= take
            remaining &= ~take
        if remaining.any():
            raise ValueError(
                "no label function fired; the digit assignment is inconsistent "
                "with a thermometer code"
            )
        plane_bits = np.unpackbits(
            planes.view(np.uint8), axis=1, bitorder="little"
        )[:, :n_samples]
        if n_label_bits <= 8:  # uint8 assembly; 8 planes cover 256 classes
            labels8 = plane_bits[0]
            for bit in range(1, n_label_bits):
                labels8 = labels8 | (plane_bits[bit] << np.uint8(bit))
            return labels8.astype(np.int64)
        labels = plane_bits[0].astype(np.int64)
        for bit in range(1, n_label_bits):
            labels |= plane_bits[bit].astype(np.int64) << bit
        return labels

    def predict_digit_matrix(self, digits: np.ndarray) -> np.ndarray:
        """Pack and evaluate an ``(n_samples, n_digits)`` digit matrix."""
        return self.predict_packed(self.pack_digit_matrix(digits))

    def predict_levels(self, X_levels: np.ndarray) -> np.ndarray:
        """Predict classes for a matrix of quantized samples."""
        return self.predict_packed(self.pack_levels(X_levels))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict classes for raw normalized samples in ``[0, 1]``."""
        levels = quantize_array_to_levels(np.asarray(X, dtype=float), self.resolution_bits)
        return self.predict_levels(levels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledTreeKernel(digits={self.n_digits}, cubes={self.n_cubes}, "
            f"literals={self.n_literals}, classes={self.n_classes}, "
            f"word_bits={WORD_BITS})"
        )


def compile_tree_kernel(tree: DecisionTree) -> CompiledTreeKernel:
    """Compile ``tree`` into a :class:`CompiledTreeKernel`, cached per tree.

    The kernel is memoized on the tree instance itself, so every consumer of
    the same trained tree -- the design point that owns it, the engine
    dispatch in :mod:`repro.mltrees.evaluation`, a scoring loop -- shares one
    compilation.  Trees are structurally immutable after training, which
    makes the instance cache safe.
    """
    kernel = getattr(tree, _CACHE_ATTR, None)
    if kernel is None:
        kernel = CompiledTreeKernel(tree)
        setattr(tree, _CACHE_ATTR, kernel)
    return kernel
