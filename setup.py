"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that editable installs keep working on environments whose setuptools/pip
lack PEP 660 support (e.g. offline machines without the ``wheel`` package):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
