"""Quickstart: co-design a self-powered printed classifier in a few lines.

This walks the shortest path through the library:

1. load a benchmark dataset (the synthetic stand-in for UCI ``seeds``),
2. run the full co-design framework (baseline [2], parallel unary
   architecture with bespoke ADCs, ADC-aware training + exploration),
3. print the accuracy, area, power and self-power verdict of each step.

Run with::

    python examples/quickstart.py
"""

from repro import CoDesignFramework, load_dataset


def main() -> None:
    dataset = load_dataset("seeds", seed=0)
    print(f"dataset: {dataset.name} -- {dataset.n_samples} samples, "
          f"{dataset.n_features} features, {dataset.n_classes} classes")

    framework = CoDesignFramework(seed=0, include_approximate_baseline=False)
    result = framework.run(dataset)

    baseline = result.baseline
    print("\n[1] Baseline bespoke decision tree [2] (conventional flash ADCs)")
    print(f"    accuracy : {baseline.accuracy * 100:5.1f} %  (depth {baseline.depth})")
    print(f"    area     : {baseline.hardware.total_area_mm2:7.1f} mm2 "
          f"({baseline.hardware.adc_area_fraction * 100:.0f}% ADCs)")
    print(f"    power    : {baseline.hardware.total_power_mw:7.2f} mW "
          f"({baseline.hardware.adc_power_fraction * 100:.0f}% ADCs)")

    unary = result.unary_bespoke_adc
    fig4 = result.fig4_reduction()
    print("\n[2] Same model, parallel unary architecture + bespoke ADCs")
    print(f"    area     : {unary.hardware.total_area_mm2:7.1f} mm2 "
          f"({fig4.area_factor:.1f}x smaller)")
    print(f"    power    : {unary.hardware.total_power_mw:7.2f} mW "
          f"({fig4.power_factor:.1f}x lower)")

    chosen = result.selected[0.01]
    table2 = result.table2_reduction(0.01)
    self_power = result.self_power(0.01)
    print("\n[3] ADC-aware co-design (<= 1% accuracy loss)")
    print(f"    accuracy : {chosen.accuracy * 100:5.1f} %  "
          f"(depth {chosen.depth}, tau {chosen.tau:g})")
    print(f"    area     : {chosen.hardware.total_area_mm2:7.2f} mm2 "
          f"({table2.area_factor:.1f}x smaller than the baseline)")
    print(f"    power    : {chosen.hardware.total_power_mw:7.3f} mW "
          f"({table2.power_factor:.1f}x lower than the baseline)")
    print(f"    system   : {self_power.total_power_mw:.3f} mW with sensors -> "
          f"{'SELF-POWERED' if self_power.is_self_powered else 'needs a battery'} "
          f"(budget {self_power.harvester_budget_mw:.1f} mW)")


if __name__ == "__main__":
    main()
