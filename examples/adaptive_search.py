"""Budgeted Pareto search vs. the exhaustive depth/tau grid on cardio.

The paper sweeps all 49 (depth, tau) combinations to find the
accuracy/power trade-off.  The adaptive-search subsystem
(:mod:`repro.search`) finds nearly the same Pareto front from a fraction
of the trainings.  This example quantifies that on cardio:

1. the exhaustive 49-point sweep and its front (the reference),
2. a budget sweep -- studies at increasing trial budgets, each against a
   throwaway store so the trained-tree count is honest -- reporting the
   hypervolume each budget recovers,
3. a side-by-side comparison of the exhaustive front and the largest
   budget's front.

Run with::

    python examples/adaptive_search.py            # serial
    REPRO_EXAMPLE_JOBS=4 python examples/adaptive_search.py

Everything is seeded: rerunning prints identical numbers.  The exhaustive
sweep caches in the default result store, so only the first run pays for
it; the studies deliberately bypass the cache (``use_cache=False``).
"""

import os

from repro.analysis.experiments import run_benchmark_suite, run_search_study
from repro.analysis.render import render_table
from repro.search import hypervolume

DATASET = "cardio"
SEED = 0
BUDGETS = (6, 9, 12, 18)
GRID_SIZE = 49


def reference_point(fronts):
    """A point weakly worse than every front point on every axis."""
    axes = zip(*[point for front in fronts for point in front])
    return tuple(max(axis) + 0.05 * (abs(max(axis)) + 1.0) for axis in axes)


def main() -> None:
    jobs = int(os.environ.get("REPRO_EXAMPLE_JOBS", "1"))

    print(f"exhaustive sweep: {GRID_SIZE} (depth, tau) trainings on {DATASET} ...")
    [suite] = run_benchmark_suite(
        datasets=(DATASET,),
        seed=SEED,
        include_approximate_baseline=False,
        jobs=jobs,
    )
    grid_objectives = [
        (-point.accuracy, point.hardware.total_power_uw)
        for point in suite.exploration
    ]

    print(f"budget sweep: studies at budgets {BUDGETS}, every trial trained\n")
    studies = [
        run_search_study(
            DATASET,
            budget=budget,
            objectives=("-accuracy", "power"),
            seed=SEED,
            jobs=jobs,
            use_cache=False,
            batch_size=3,
        )
        for budget in BUDGETS
    ]

    study_fronts = [
        [trial.objectives for trial in study.front] for study in studies
    ]
    reference = reference_point([grid_objectives, *study_fronts])
    grid_hv = hypervolume(grid_objectives, reference)

    print("hypervolume recovered per budget (1.0 = the exhaustive front):")
    print(render_table(
        ["budget", "trained trees", "vs grid", "front size", "hv ratio"],
        [
            (
                budget,
                study.n_trained,
                f"{GRID_SIZE / study.n_trained:.1f}x fewer",
                len(study.front_numbers),
                hypervolume(front, reference) / grid_hv,
            )
            for budget, study, front in zip(BUDGETS, studies, study_fronts)
        ],
    ))

    best = studies[-1]

    def front_rows(points):
        return [
            (p.depth, p.tau, p.accuracy * 100.0,
             p.hardware.total_power_uw, p.hardware.total_area_mm2)
            for p in points
        ]

    exhaustive_front = sorted(
        (
            point
            for point in suite.exploration
            if not any(
                other.accuracy >= point.accuracy
                and other.hardware.total_power_uw < point.hardware.total_power_uw
                for other in suite.exploration
            )
        ),
        key=lambda p: p.hardware.total_power_uw,
    )
    columns = ["depth", "tau", "accuracy (%)", "power (uW)", "area (mm2)"]
    print(f"\nexhaustive front ({GRID_SIZE} trainings):")
    print(render_table(columns, front_rows(exhaustive_front)))

    print(f"\nbudget-{BUDGETS[-1]} study front ({best.n_trained} trainings):")
    print(render_table(
        columns,
        [
            (t.config["depth"], t.config["tau"], t.accuracy * 100.0,
             t.power_uw, t.area_mm2)
            for t in sorted(best.front, key=lambda t: t.power_uw)
        ],
    ))


if __name__ == "__main__":
    main()
