"""Export the generated hardware: Verilog, DOT, ADC spec and cost reports.

The co-design framework is only useful downstream if its outputs can feed a
real printed-electronics flow.  This example trains a co-designed classifier
for the balance-scale benchmark and writes every artifact a hardware engineer
would want into ``examples/output/``:

* ``unary_tree.v``       -- structural Verilog of the two-level label logic,
* ``baseline_tree.v``    -- structural Verilog of the baseline comparator tree,
* ``decision_tree.txt``  -- human-readable tree dump,
* ``decision_tree.dot``  -- Graphviz rendering of the tree,
* ``bespoke_adcs.txt``   -- per-input bespoke ADC specification,
* ``cost_report.txt``    -- area/power comparison of baseline vs proposed.

Run with::

    python examples/export_hardware_artifacts.py
"""

from pathlib import Path

from repro import UnaryDecisionTree, build_bespoke_adcs, default_technology, load_dataset
from repro.analysis.render import render_table
from repro.baselines.mubarik import BaselineBespokeDesign
from repro.circuits.verilog import netlist_to_verilog
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.exploration import proposed_hardware_report
from repro.mltrees.evaluation import accuracy_score, train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.mltrees.render import render_tree_text, tree_to_dot

OUTPUT_DIR = Path(__file__).parent / "output"


def main() -> None:
    technology = default_technology()
    dataset = load_dataset("balance_scale", seed=0)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=0
    )
    X_train_levels = quantize_dataset(X_train)
    X_test_levels = quantize_dataset(X_test)

    tree = ADCAwareTrainer(max_depth=4, gini_threshold=0.01, seed=0).fit(
        X_train_levels, y_train, dataset.n_classes
    )
    accuracy = accuracy_score(y_test, tree.predict_levels(X_test_levels))
    unary = UnaryDecisionTree(tree)

    OUTPUT_DIR.mkdir(exist_ok=True)

    # Verilog of the proposed two-level unary logic and of the baseline tree.
    unary_verilog = netlist_to_verilog(unary.to_netlist("unary_tree"))
    (OUTPUT_DIR / "unary_tree.v").write_text(unary_verilog)
    baseline = BaselineBespokeDesign(tree, technology)
    (OUTPUT_DIR / "baseline_tree.v").write_text(
        netlist_to_verilog(baseline.netlist, module_name="baseline_tree")
    )

    # Model views.
    (OUTPUT_DIR / "decision_tree.txt").write_text(
        render_tree_text(tree, dataset.feature_names, dataset.class_names) + "\n"
    )
    (OUTPUT_DIR / "decision_tree.dot").write_text(
        tree_to_dot(tree, dataset.feature_names, dataset.class_names)
    )

    # Bespoke ADC specification.
    adcs = build_bespoke_adcs(unary, technology, feature_names=dataset.feature_names)
    adc_lines = ["Bespoke ADC specification (one channel per used input)", ""]
    for feature, adc in adcs.items():
        adc_lines.append(
            f"input {feature} ({adc.feature_name}): {adc.label}, retained levels "
            f"{list(adc.retained_levels)}, Vref taps "
            f"{[f'{level / 16:.3f} V' for level in adc.retained_levels]}, "
            f"{adc.area_mm2:.3f} mm2, {adc.power_uw:.1f} uW"
        )
    (OUTPUT_DIR / "bespoke_adcs.txt").write_text("\n".join(adc_lines) + "\n")

    # Cost report.
    baseline_hw = baseline.hardware_report()
    proposed_hw = proposed_hardware_report(tree, technology, name="proposed")
    cost_table = render_table(
        ["implementation", "area (mm2)", "power (mW)", "#analog comparators"],
        [
            ("baseline [2]", baseline_hw.total_area_mm2,
             baseline_hw.total_power_mw, baseline_hw.n_adc_comparators),
            ("proposed co-design", proposed_hw.total_area_mm2,
             proposed_hw.total_power_mw, proposed_hw.n_adc_comparators),
        ],
    )
    report = (
        f"balance-scale co-designed classifier, accuracy {accuracy * 100:.1f}%\n\n"
        + cost_table + "\n"
    )
    (OUTPUT_DIR / "cost_report.txt").write_text(report)

    print(report)
    print(f"artifacts written to {OUTPUT_DIR}/:")
    for path in sorted(OUTPUT_DIR.iterdir()):
        print(f"  {path.name:20s} {path.stat().st_size:6d} bytes")


if __name__ == "__main__":
    main()
