"""Nominal vs offset-aware training: robustness without the power premium.

``examples/robustness_frontier.py`` shows that buying robustness at *selection*
time costs power: under a mean-accuracy-drop budget the constrained winner is
usually a bigger design than the nominal winner.  Offset-aware *training*
attacks the same problem one layer deeper -- the trainer's split scores carry
the analytic expected digit-flip penalty, so thresholds land in sparse sample
regions and the very same (depth, tau) grid becomes inherently more
offset-tolerant.

This example runs the variation-aware exploration twice -- once with nominal
Gini training and once with ``training_sigma`` matched to the simulated offset
sigma -- and compares:

1. the mean accuracy drop of the two grids at matched (depth, tau), and
2. the constrained selection under a robustness budget: how often the
   offset-aware grid meets the budget with a *cheaper* design.

Both passes cache in the result store under training-parameter-aware keys, so
re-runs (and ``repro.cli explore --training-sigma``) reuse the work.  Run
with::

    python examples/offset_aware_training.py
"""

from repro.analysis.experiments import run_robust_exploration
from repro.analysis.render import render_table

DATASET = "seeds"
SIGMA_V = 0.04          # simulated comparator offset sigma (volts)
N_TRIALS = 300
MAX_ACCURACY_LOSS = 0.01
DROP_BUDGET = 0.01


def main() -> None:
    nominal = run_robust_exploration(
        DATASET, sigma_v=SIGMA_V, n_trials=N_TRIALS, seed=0
    )
    aware = run_robust_exploration(
        DATASET, sigma_v=SIGMA_V, n_trials=N_TRIALS, seed=0,
        training_sigma=SIGMA_V,
    )
    print(
        f"nominal vs offset-aware training on '{DATASET}' "
        f"(offset sigma {SIGMA_V * 1000:g} mV, {N_TRIALS} trials/point, "
        f"baseline accuracy {nominal.baseline_accuracy * 100:.2f}%)\n"
    )

    # ------------------------------------------------------------------ #
    # 1. matched (depth, tau): who tolerates the offsets better?
    # ------------------------------------------------------------------ #
    aware_by_grid = {(p.depth, p.tau): p for p in aware.points}
    rows = []
    wins = 0
    for point in nominal.points:
        twin = aware_by_grid[(point.depth, point.tau)]
        better = twin.mean_accuracy_drop < point.mean_accuracy_drop
        wins += better
        if point.depth not in (4, 6):  # keep the printed table digestible
            continue
        rows.append(
            (
                point.depth,
                f"{point.tau:g}",
                point.accuracy * 100.0,
                twin.accuracy * 100.0,
                point.mean_accuracy_drop * 100.0,
                twin.mean_accuracy_drop * 100.0,
                "aware" if better else "nominal",
            )
        )
    print(render_table(
        ["depth", "tau", "nom acc (%)", "aware acc (%)",
         "nom drop (%)", "aware drop (%)", "more robust"],
        rows,
    ))
    print(
        f"\noffset-aware training wins {wins}/{len(nominal.points)} "
        f"matched grid points on mean accuracy drop"
    )

    # ------------------------------------------------------------------ #
    # 2. constrained selection: the power premium, revisited
    # ------------------------------------------------------------------ #
    print(
        f"\nselection under accuracy loss <= {MAX_ACCURACY_LOSS:.0%} and "
        f"mean drop <= {DROP_BUDGET:.0%}:"
    )
    rows = []
    for label, exploration in (("nominal", nominal), ("offset-aware", aware)):
        point = exploration.select(
            max_accuracy_loss=MAX_ACCURACY_LOSS, max_accuracy_drop=DROP_BUDGET
        )
        if point is None:
            rows.append((label, "-", "-", "-", "-", "-"))
            continue
        rows.append(
            (
                label,
                point.depth,
                f"{point.tau:g}",
                point.accuracy * 100.0,
                point.mean_accuracy_drop * 100.0,
                point.hardware.total_power_mw,
            )
        )
    print(render_table(
        ["training", "depth", "tau", "acc (%)", "mean drop (%)", "power (mW)"],
        rows,
    ))


if __name__ == "__main__":
    main()
