"""Technology sensitivity study: what if the printed process changes?

The EGFET cost model shipped with the library is calibrated against the
paper's published numbers, but every constant lives in
:class:`repro.pdk.EGFETTechnology`, so a user can re-run the whole co-design
under a different process assumption.  This example studies two questions on
the seeds benchmark:

1. how do the co-design gains change if the comparator power scales more or
   less steeply with the reference level (the property the ADC-aware training
   exploits)?
2. how large can the classifier get before a weaker (1 mW) or stronger (5 mW)
   printed harvester stops covering it?

Run with::

    python examples/custom_technology_study.py
"""

from dataclasses import replace

from repro import CoDesignFramework, default_technology, load_dataset
from repro.analysis.render import render_table
from repro.pdk.comparator import AnalogComparatorModel
from repro.pdk.harvester import PrintedEnergyHarvester


def run_with(technology, dataset):
    framework = CoDesignFramework(
        technology=technology, seed=0, include_approximate_baseline=False
    )
    return framework.run(dataset)


def main() -> None:
    dataset = load_dataset("seeds", seed=0)
    nominal = default_technology()

    # ------------------------------------------------------------------ #
    # 1. comparator power slope sweep
    # ------------------------------------------------------------------ #
    slope_rows = []
    for label, slope_scale in [("flat (0.25x)", 0.25), ("nominal (1x)", 1.0), ("steep (2x)", 2.0)]:
        comparator = AnalogComparatorModel(
            area_mm2=nominal.comparator.area_mm2,
            power_base_uw=nominal.comparator.power_base_uw,
            power_per_level_uw=nominal.comparator.power_per_level_uw * slope_scale,
        )
        technology = replace(nominal, comparator=comparator)
        result = run_with(technology, dataset)
        chosen = result.selected[0.01]
        table2 = result.table2_reduction(0.01)
        slope_rows.append(
            (label, chosen.hardware.adc_power_uw, chosen.hardware.total_power_mw,
             table2.power_factor)
        )
    print("comparator power-vs-level slope sensitivity (seeds, <=1% loss):")
    print(render_table(
        ["power slope", "ADC power (uW)", "total power (mW)", "power reduction vs [2] (x)"],
        slope_rows,
    ))

    # ------------------------------------------------------------------ #
    # 2. harvester budget sweep
    # ------------------------------------------------------------------ #
    harvester_rows = []
    for budget in (1.0, 2.0, 5.0):
        technology = replace(
            nominal, harvester=PrintedEnergyHarvester(budget_mw=budget)
        )
        result = run_with(technology, dataset)
        baseline_ok = result.baseline.hardware.total_power_mw <= budget
        analysis = result.self_power(0.01)
        harvester_rows.append(
            (f"{budget:.0f} mW", baseline_ok, analysis.is_self_powered,
             analysis.utilization * 100.0)
        )
    print("\nharvester budget sensitivity (seeds, <=1% loss):")
    print(render_table(
        ["harvester budget", "baseline self-powered", "co-design self-powered",
         "co-design utilization (%)"],
        harvester_rows,
    ))


if __name__ == "__main__":
    main()
