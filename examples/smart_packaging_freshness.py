"""Smart packaging: on-sensor food-freshness classification.

Printed electronics' flagship use case (paper, Section I) is disposable smart
packaging: a printed gas-sensor array on a food package classifies the
product as fresh / stale / spoiled, powered only by a printed energy
harvester.  This example builds that system end to end:

1. synthesize a gas-sensor freshness dataset (one channel per printed sensor:
   ethanol, ammonia, CO2, humidity, temperature, volatile sulphur),
2. train with the ADC-aware trainer and generate the bespoke ADC front end,
3. verify the synthesized unary logic against the software model,
4. stream "sensor readings" through the analog front end and the unary logic
   to emulate on-sensor inference,
5. check the whole tag (sensors + ADCs + logic) against the 2 mW harvester.

Run with::

    python examples/smart_packaging_freshness.py
"""

import numpy as np

from repro import (
    ADCAwareTrainer,
    UnaryDecisionTree,
    analyze_self_power,
    build_bespoke_frontend,
    default_technology,
)
from repro.circuits.verification import check_equivalence
from repro.core.exploration import proposed_hardware_report
from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_classification_blobs
from repro.mltrees.evaluation import accuracy_score, train_test_split
from repro.mltrees.quantize import quantize_dataset

SENSOR_NAMES = [
    "ethanol", "ammonia", "co2", "humidity", "temperature", "volatile_sulphur",
]
CLASS_NAMES = ["fresh", "stale", "spoiled"]


def make_freshness_dataset(seed: int = 0) -> Dataset:
    """Synthetic gas-sensor freshness dataset (3 classes, 6 printed sensors)."""
    X, y = make_classification_blobs(
        n_samples=900,
        n_features=len(SENSOR_NAMES),
        n_classes=len(CLASS_NAMES),
        class_sep=2.1,
        noise_scale=1.0,
        label_noise=0.04,
        class_weights=[0.6, 0.25, 0.15],
        clusters_per_class=2,
        seed=seed,
    )
    return Dataset(
        name="freshness",
        X=X,
        y=y,
        feature_names=SENSOR_NAMES,
        class_names=CLASS_NAMES,
        description="Synthetic printed gas-sensor food-freshness monitoring task.",
    )


def main() -> None:
    technology = default_technology()
    dataset = make_freshness_dataset()
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=0
    )
    X_train_levels = quantize_dataset(X_train)
    X_test_levels = quantize_dataset(X_test)

    # --- train the ADC-aware decision tree ------------------------------- #
    trainer = ADCAwareTrainer(max_depth=5, gini_threshold=0.01, seed=0)
    tree = trainer.fit(X_train_levels, y_train, dataset.n_classes)
    accuracy = accuracy_score(y_test, tree.predict_levels(X_test_levels))
    print(f"trained freshness classifier: depth {tree.depth}, "
          f"{tree.n_decision_nodes} decision nodes, accuracy {accuracy * 100:.1f}%")

    # --- generate the printed hardware ----------------------------------- #
    unary = UnaryDecisionTree(tree)
    frontend = build_bespoke_frontend(unary, technology, feature_names=SENSOR_NAMES)
    print("\nbespoke ADC front end (one channel per used sensor):")
    for feature, adc in frontend.adcs.items():
        levels = ", ".join(str(level) for level in adc.retained_levels)
        print(f"  {adc.feature_name:17s} {adc.label:6s} retained levels: {levels:20s} "
              f"{adc.area_mm2:.2f} mm2, {adc.power_uw:.0f} uW")

    netlist = unary.to_netlist("freshness_tree")
    print(f"\nunary label logic: {netlist.n_gates} gates "
          f"({dict(netlist.cell_histogram())})")

    # --- verify the netlist against the software model -------------------- #
    def reference(assignment):
        label = unary.predict_from_assignment(assignment)
        return {unary.class_output(c): (c == label) for c in range(unary.n_classes)}

    equivalence = check_equivalence(netlist, reference, n_random_vectors=500, seed=1)
    print(f"netlist vs model equivalence: "
          f"{'PASS' if equivalence.equivalent else 'FAIL'} "
          f"({equivalence.n_vectors} vectors)")

    # --- emulate on-sensor inference on streaming readings ---------------- #
    print("\non-sensor inference on 5 sampled packages:")
    rng = np.random.default_rng(7)
    sample_indices = rng.choice(len(X_test), size=5, replace=False)
    for index in sample_indices:
        reading = X_test[index]
        digits = frontend.convert(reading)
        label = unary.predict_from_digits(digits)
        truth = CLASS_NAMES[y_test[index]]
        print(f"  reading {np.round(reading, 2)} -> {CLASS_NAMES[label]:8s} "
              f"(ground truth: {truth})")

    # --- self-power feasibility ------------------------------------------ #
    hardware = proposed_hardware_report(tree, technology, name="freshness tag")
    analysis = analyze_self_power(hardware, technology)
    print(f"\ncomplete tag power: {analysis.total_power_mw:.3f} mW "
          f"(classifier {analysis.classifier_power_mw:.3f} mW + "
          f"sensors {analysis.sensor_power_mw:.3f} mW)")
    print(f"printed harvester budget: {analysis.harvester_budget_mw:.1f} mW -> "
          f"{'SELF-POWERED tag' if analysis.is_self_powered else 'budget exceeded'} "
          f"({analysis.utilization * 100:.0f}% utilization)")


if __name__ == "__main__":
    main()
