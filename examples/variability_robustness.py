"""Variability and timing sign-off of a co-designed printed classifier.

Printed processes are far more variable and far slower than silicon.  Before
committing a co-designed classifier to fabrication, two sign-off questions
matter beyond area and power:

1. **Comparator offsets** -- the bespoke ADCs keep only a handful of
   comparators, each of which may trip early or late by a random offset.
   How much classification accuracy survives realistic offset sigmas?
2. **Timing** -- EGFET gates switch in milliseconds.  Does the classifier's
   critical path fit inside the 50 ms sampling period at 20 Hz?
3. **Seed stability** -- how much do the headline gains move across dataset
   splits and training seeds?

Run with::

    python examples/variability_robustness.py
"""

from repro import UnaryDecisionTree, default_technology, load_dataset
from repro.analysis.render import render_table
from repro.analysis.stats import run_multi_seed
from repro.circuits.timing import estimate_timing
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.variation import offset_tolerance_sweep
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.quantize import quantize_dataset

DATASET = "vertebral_3c"


def main() -> None:
    technology = default_technology()
    dataset = load_dataset(DATASET, seed=0)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=0
    )
    tree = ADCAwareTrainer(max_depth=4, gini_threshold=0.01, seed=0).fit(
        quantize_dataset(X_train), y_train, dataset.n_classes
    )
    unary = UnaryDecisionTree(tree)

    # ------------------------------------------------------------------ #
    # 1. comparator-offset Monte Carlo
    # ------------------------------------------------------------------ #
    # The vectorized Monte-Carlo evaluates all trials as one offset matrix,
    # so thousands of trials per sigma are cheap (add jobs=4 to fan trial
    # batches over worker processes with bit-identical results).
    sigmas = (0.0, 0.005, 0.01, 0.02, 0.04)
    analyses = offset_tolerance_sweep(
        unary, X_test, y_test, sigmas_v=sigmas, n_trials=1000,
        technology=technology, seed=0,
    )
    print(f"comparator-offset robustness on '{DATASET}' "
          f"(1000 trials/sigma; 1 LSB of the 4-bit ADC = 62.5 mV):")
    print(render_table(
        ["offset sigma (mV)", "nominal acc (%)", "mean acc (%)", "worst acc (%)"],
        [
            (a.sigma_v * 1000.0, a.nominal_accuracy * 100.0,
             a.mean_accuracy * 100.0, a.min_accuracy * 100.0)
            for a in analyses
        ],
    ))

    # ------------------------------------------------------------------ #
    # 2. timing sign-off at 20 Hz
    # ------------------------------------------------------------------ #
    timing = estimate_timing(unary.to_netlist(), technology)
    print(f"\ntiming: critical path {timing.critical_path_delay_ms:.1f} ms over "
          f"{timing.logic_depth} cells vs a {timing.sampling_period_ms:.0f} ms "
          f"sampling period -> {'MEETS timing' if timing.meets_timing else 'VIOLATES timing'} "
          f"(slack {timing.slack_ms:.1f} ms)")

    # ------------------------------------------------------------------ #
    # 3. seed stability of the headline gains
    # ------------------------------------------------------------------ #
    summary = run_multi_seed(DATASET, seeds=(0, 1, 2), accuracy_loss=0.01)
    print(f"\nheadline gains across seeds {summary.seeds} (<=1% accuracy loss):")
    print(render_table(
        ["metric", "mean", "std", "min", "max"],
        [
            ("co-design power (mW)", summary.codesign_power_mw.mean,
             summary.codesign_power_mw.std, summary.codesign_power_mw.minimum,
             summary.codesign_power_mw.maximum),
            ("power reduction vs [2] (x)", summary.power_reduction_x.mean,
             summary.power_reduction_x.std, summary.power_reduction_x.minimum,
             summary.power_reduction_x.maximum),
            ("area reduction vs [2] (x)", summary.area_reduction_x.mean,
             summary.area_reduction_x.std, summary.area_reduction_x.minimum,
             summary.area_reduction_x.maximum),
        ],
    ))
    print(f"self-powered in {summary.self_powered_fraction * 100:.0f}% of the seeds")


if __name__ == "__main__":
    main()
