"""Streaming scoring: promote a model, serve it, measure what clients see.

End-to-end tour of the serving stack (see ``docs/SERVING.md``): promote the
wearable-patch posture classifier into the model registry, stand up the
async micro-batching scorer over the bit-parallel kernel, replay the
patient stream through it both open-loop (the SLO view: fixed arrival rate,
coordinated-omission-safe percentiles) and closed-loop (the capacity view:
saturated clients), and compare against naive request-per-call scoring.

Run with::

    python examples/streaming_scoring.py
"""

import asyncio
import tempfile
import time

from repro import load_dataset
from repro.serve import (
    AsyncScorer,
    BatchingConfig,
    ModelRegistry,
    promote_design,
    run_closed_loop,
    run_open_loop,
)


def main() -> None:
    dataset = load_dataset("vertebral_2c", seed=0)
    print(f"sensor stream: {dataset.name} -- {dataset.n_samples} patients, "
          f"{dataset.n_features} biomechanical attributes")

    # --- promote: design point -> named, versioned, content-addressed model
    with tempfile.TemporaryDirectory() as scratch:
        registry = ModelRegistry(scratch)
        artifact = promote_design(registry, "vertebral_2c", depth=4, tau=0.0)
        meta = artifact.kernel_meta
        print(f"\npromoted {artifact.name}/v{artifact.version} "
              f"(digest {artifact.digest[:12]}): accuracy "
              f"{artifact.accuracy * 100:.1f}%, kernel {meta['n_cubes']} cubes "
              f"/ {meta['n_literals']} literals over {meta['n_digits']} digits")

        # --- single request: one label, bit-identical on every path
        async def score_first_patient():
            async with AsyncScorer(artifact) as scorer:
                label = await scorer.score(dataset.X[0])
                assert label == scorer.score_one(dataset.X[0])
                return label

        label = asyncio.run(score_first_patient())
        print(f"first patient -> class {label} ({dataset.class_names[label]})")

        # --- open loop: a patch fleet firing at 2000 samples/s aggregate
        async def slo_view():
            async with AsyncScorer(artifact) as scorer:
                return await run_open_loop(
                    scorer, dataset.X, rate_hz=2000.0, duration_s=2.0
                )

        report = asyncio.run(slo_view())
        print(f"\nopen loop   : {report.summary()}")
        print(f"              p99 {report.p99_ms:.2f} ms against a 50 ms SLO "
              f"-> headroom {50.0 / report.p99_ms:.1f}x")

        # --- closed loop: 256 saturated clients = the throughput ceiling
        async def capacity_view():
            config = BatchingConfig(max_batch_size=256, max_wait_us=200.0)
            async with AsyncScorer(artifact, config=config) as scorer:
                return await run_closed_loop(
                    scorer, dataset.X, n_clients=256, requests_per_client=40
                )

        report = asyncio.run(capacity_view())
        print(f"closed loop : {report.summary()}")

        # --- the naive alternative: one quantization + one kernel call each
        scorer = AsyncScorer(artifact)
        n = min(2000, 256 * 40)
        start = time.perf_counter()
        for i in range(n):
            scorer.score_one(dataset.X[i % len(dataset.X)])
        single_rate = n / (time.perf_counter() - start)
        print(f"\nrequest-per-call reference: {single_rate:.0f} req/s; "
              f"micro-batching gains {report.throughput_hz / single_rate:.1f}x "
              f"(mean batch {report.batcher.mean_batch:.0f})")


if __name__ == "__main__":
    main()
