"""Map and render the multi-sigma robustness surface of one benchmark.

The paper's variation analysis (Sec. V) quotes accuracy drops at a single
comparator-offset sigma.  The surface sweep generalizes that to the full
(sigma x depth x tau) cube: one Monte-Carlo variation analysis per cell,
every cell resolved through the shared content-addressed result store --
the exact entries a sharded ``suite --sigma 0.01 0.02 0.04`` run computes
and a ``mean_accuracy_drop`` search study warm-starts from.

This example:

1. plans the multi-sigma work units and shows how they split over shards,
2. computes the surface on a small grid (warm runs are pure cache hits),
3. re-resolves it in strict ``cache_only`` mode -- the assemble-time
   discipline that proves zero recomputation,
4. renders the text table, the per-sigma aggregates, and the
   self-contained SVG heatmap dashboard.

Run with::

    python examples/robustness_surface.py            # serial
    REPRO_EXAMPLE_JOBS=4 python examples/robustness_surface.py

Everything is seeded: rerunning prints identical numbers, and the second
run resolves every cell from the on-disk store.
"""

import os
import tempfile
from pathlib import Path

from repro.analysis.experiments import run_robustness_surface
from repro.analysis.tables import robustness_surface_summary
from repro.core.sharding import ShardSpec, plan_suite_units
from repro.core.store import ResultStore
from repro.search import render_surface

DATASET = "vertebral_2c"
SIGMAS = (0.01, 0.02, 0.04)
DEPTHS = (2, 3, 4, 5)
TAUS = (0.0, 0.01, 0.02)
TRIALS = 50
SEED = 0


def main() -> None:
    jobs = int(os.environ.get("REPRO_EXAMPLE_JOBS", "1"))
    store = ResultStore(cache_dir=Path(tempfile.gettempdir()) / "repro-surface-example")

    plan = plan_suite_units(
        datasets=(DATASET,), sigmas=SIGMAS, n_trials=TRIALS,
        depths=DEPTHS, taus=TAUS,
    )
    per_shard = [len(plan.shard(ShardSpec(index, 3))) for index in (1, 2, 3)]
    print(
        f"plan: {len(plan.units)} work units "
        f"({len(SIGMAS)} sigmas x {len(DEPTHS)}x{len(TAUS)} grid + 2 suite); "
        f"a 3-shard split takes {per_shard} units each\n"
    )

    surface = run_robustness_surface(
        DATASET, SIGMAS, n_trials=TRIALS, seed=SEED,
        depths=DEPTHS, taus=TAUS, jobs=jobs, store=store,
    )

    # The strict assemble discipline: resolve the whole surface again
    # without permission to compute anything.
    replay = run_robustness_surface(
        DATASET, SIGMAS, n_trials=TRIALS, seed=SEED,
        depths=DEPTHS, taus=TAUS, store=store, cache_only=True,
    )
    assert replay == surface
    print("cache-only replay: identical surface, zero recomputation\n")

    print(
        f"robustness surface of {DATASET} "
        f"(baseline accuracy {surface.baseline_accuracy * 100:.2f}%):"
    )
    for entry in robustness_surface_summary(surface)["per_sigma"]:
        print(
            f"  sigma {entry['sigma_v'] * 1000:g} mV: "
            f"avg mean drop {entry['average_mean_accuracy_drop_pct']:.2f}%, "
            f"max worst-case drop {entry['max_worst_case_drop_pct']:.2f}%"
        )

    worst = max(surface.cells, key=lambda cell: cell.mean_accuracy_drop)
    best = min(surface.cells, key=lambda cell: cell.mean_accuracy_drop)
    print(
        f"\nmost fragile cell:  d={worst.depth}, tau={worst.tau:g} at "
        f"{worst.sigma_v * 1000:g} mV ({worst.mean_accuracy_drop * 100:.2f}% mean drop)"
    )
    print(
        f"most robust cell:   d={best.depth}, tau={best.tau:g} at "
        f"{best.sigma_v * 1000:g} mV ({best.mean_accuracy_drop * 100:.2f}% mean drop)"
    )

    html = Path(tempfile.gettempdir()) / "repro_surface_example.html"
    html.write_text(render_surface(surface.to_json_dict()), encoding="utf-8")
    print(f"\nwrote the SVG heatmap dashboard to {html}")


if __name__ == "__main__":
    main()
