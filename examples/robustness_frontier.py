"""Walking the sigma x (depth, tau) accuracy/power/robustness frontier.

The nominal design-space exploration of the paper picks, per accuracy-loss
budget, the most power-efficient (depth, tau) combination.  Printed
comparators, however, carry large random input offsets -- and the design
that wins nominally is often *not* the design that survives them best.

This example runs the variation-aware exploration at several offset sigmas
and shows how the constrained selection moves across the (depth, tau) grid
as the robustness budget tightens:

1. per sigma, the nominal winner vs the winner under a mean-accuracy-drop
   constraint (the offset-aware Table II selection), and
2. the accuracy / power / mean-drop frontier of the winning designs.

Every (sigma, depth, tau) Monte-Carlo summary is cached in the result store
under the same keys ``repro.cli variation`` and ``repro.cli explore`` use,
so re-runs (and the CLI) reuse the work.  Run with::

    python examples/robustness_frontier.py
"""

from repro.analysis.experiments import run_robust_exploration
from repro.analysis.render import render_table

DATASET = "seeds"
SIGMAS_V = (0.01, 0.02, 0.04)
N_TRIALS = 300
MAX_ACCURACY_LOSS = 0.01
DROP_BUDGETS = (None, 0.02, 0.01)


def main() -> None:
    explorations = [
        run_robust_exploration(DATASET, sigma_v=sigma, n_trials=N_TRIALS, seed=0)
        for sigma in SIGMAS_V
    ]
    baseline = explorations[0].baseline_accuracy
    print(
        f"variation-aware exploration of '{DATASET}' "
        f"({N_TRIALS} trials/point, baseline accuracy {baseline * 100:.2f}%, "
        f"accuracy loss <= {MAX_ACCURACY_LOSS:.0%})\n"
    )

    # ------------------------------------------------------------------ #
    # 1. how the selection moves as the robustness budget tightens
    # ------------------------------------------------------------------ #
    rows = []
    for exploration in explorations:
        for budget in DROP_BUDGETS:
            point = exploration.select(
                max_accuracy_loss=MAX_ACCURACY_LOSS, max_accuracy_drop=budget
            )
            label = "nominal" if budget is None else f"<= {budget:.0%}"
            if point is None:
                rows.append(
                    (exploration.sigma_v * 1000.0, label, "-", "-", "-", "-", "-")
                )
                continue
            rows.append(
                (
                    exploration.sigma_v * 1000.0,
                    label,
                    point.depth,
                    f"{point.tau:g}",
                    point.accuracy * 100.0,
                    point.mean_accuracy_drop * 100.0,
                    point.hardware.total_power_mw,
                )
            )
    print(render_table(
        ["sigma (mV)", "drop budget", "depth", "tau", "acc (%)",
         "mean drop (%)", "power (mW)"],
        rows,
    ))

    # ------------------------------------------------------------------ #
    # 2. the frontier: what robustness costs in power
    # ------------------------------------------------------------------ #
    print("\nrobustness premium (power of the constrained winner vs nominal):")
    premium_rows = []
    for exploration in explorations:
        nominal = exploration.select(max_accuracy_loss=MAX_ACCURACY_LOSS)
        robust = exploration.select(
            max_accuracy_loss=MAX_ACCURACY_LOSS, max_accuracy_drop=0.01
        )
        if nominal is None or robust is None:
            continue
        premium_rows.append(
            (
                exploration.sigma_v * 1000.0,
                nominal.hardware.total_power_mw,
                robust.hardware.total_power_mw,
                robust.hardware.total_power_mw / nominal.hardware.total_power_mw,
                nominal.mean_accuracy_drop * 100.0,
                robust.mean_accuracy_drop * 100.0,
            )
        )
    print(render_table(
        ["sigma (mV)", "nominal power (mW)", "robust power (mW)", "premium (x)",
         "nominal drop (%)", "robust drop (%)"],
        premium_rows,
    ))


if __name__ == "__main__":
    main()
