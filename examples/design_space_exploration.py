"""Design-space exploration: accuracy vs hardware across depth and tau.

Reproduces, for a single benchmark (cardio), the exploration of Section IV:
every (depth, tau) combination is trained with the ADC-aware trainer, costed
with the bespoke-ADC unary architecture, and the accuracy/power trade-off is
reported -- including the designs that would be selected under the paper's
0 % / 1 % / 5 % accuracy-loss constraints and the accuracy-power Pareto
front.

Run with::

    python examples/design_space_exploration.py          # serial sweep
    REPRO_EXAMPLE_JOBS=4 python examples/design_space_exploration.py

The sweep's 49 trainings are independent: with ``REPRO_EXAMPLE_JOBS`` set,
they fan out over a process pool through :func:`repro.get_executor` and
produce bit-identical points.
"""

import os

from repro import DesignSpaceExplorer, get_executor, load_dataset, select_best_design
from repro.analysis.render import render_table
from repro.mltrees.cart import fit_baseline_tree
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.quantize import quantize_dataset


def pareto_front(points):
    """Points not dominated in (higher accuracy, lower power)."""
    front = []
    for point in points:
        dominated = any(
            other.accuracy >= point.accuracy
            and other.hardware.total_power_uw < point.hardware.total_power_uw
            for other in points
        )
        if not dominated:
            front.append(point)
    return sorted(front, key=lambda p: p.hardware.total_power_uw)


def main() -> None:
    dataset = load_dataset("cardio", seed=0)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=0
    )
    X_train_levels = quantize_dataset(X_train)
    X_test_levels = quantize_dataset(X_test)

    baseline = fit_baseline_tree(
        X_train_levels, y_train, X_test_levels, y_test, dataset.n_classes
    )
    print(f"baseline (ADC-unaware) accuracy: {baseline.test_accuracy * 100:.1f}% "
          f"at depth {baseline.depth}")

    explorer = DesignSpaceExplorer(seed=0)
    jobs = int(os.environ.get("REPRO_EXAMPLE_JOBS", "1"))
    with get_executor(jobs) as executor:
        points = explorer.explore(
            X_train_levels, y_train, X_test_levels, y_test,
            n_classes=dataset.n_classes, dataset_name=dataset.name,
            executor=executor,
        )
    print(f"explored {len(points)} (depth, tau) combinations "
          f"({executor.jobs} worker{'s' if executor.jobs > 1 else ''})\n")

    front = pareto_front(points)
    print("accuracy-power Pareto front:")
    print(render_table(
        ["depth", "tau", "accuracy (%)", "ADC comparators", "area (mm2)", "power (mW)"],
        [
            (p.depth, p.tau, p.accuracy * 100.0, p.hardware.n_adc_comparators,
             p.hardware.total_area_mm2, p.hardware.total_power_uw / 1000.0)
            for p in front
        ],
    ))

    print("\nselected designs per accuracy-loss constraint:")
    rows = []
    for loss in (0.0, 0.01, 0.05):
        chosen = select_best_design(points, baseline.test_accuracy, loss)
        if chosen is None:
            rows.append((f"<= {loss:.0%}", "-", "-", "-", "-", "-"))
            continue
        rows.append((
            f"<= {loss:.0%}", chosen.depth, chosen.tau, chosen.accuracy * 100.0,
            chosen.hardware.total_area_mm2, chosen.hardware.total_power_uw / 1000.0,
        ))
    print(render_table(
        ["accuracy loss", "depth", "tau", "accuracy (%)", "area (mm2)", "power (mW)"],
        rows,
    ))


if __name__ == "__main__":
    main()
