"""Healthcare patch: posture/vertebral-condition screening on a smart bandage.

The paper motivates printed classifiers for healthcare disposables such as
smart bandages.  This example uses the vertebral-column benchmark (the
2-class normal/abnormal screening task) and walks the comparison the paper's
Table II makes: exact baseline [2], approximate baseline [7], and the
proposed co-design -- all for at most 1 % accuracy loss -- ending with the
self-power verdict for a wearable printed patch.

Run with::

    python examples/healthcare_patch_posture.py
"""

from repro import CoDesignFramework, load_dataset
from repro.analysis.render import render_table


def main() -> None:
    dataset = load_dataset("vertebral_2c", seed=0)
    print(f"screening task: {dataset.name} -- {dataset.n_samples} patients, "
          f"{dataset.n_features} biomechanical attributes, "
          f"{dataset.n_classes} classes {dataset.class_names}")

    framework = CoDesignFramework(seed=0, include_approximate_baseline=True)
    result = framework.run(dataset)

    rows = []
    baseline = result.baseline
    rows.append((
        "exact baseline [2]", f"{baseline.accuracy * 100:.1f}",
        baseline.hardware.total_area_mm2, baseline.hardware.total_power_mw,
        baseline.hardware.total_power_mw <= 2.0,
    ))
    approximate = result.approximate_baseline
    if approximate is not None:
        rows.append((
            "approximate [7]", f"{approximate.accuracy * 100:.1f}",
            approximate.hardware.total_area_mm2, approximate.hardware.total_power_mw,
            approximate.hardware.total_power_mw <= 2.0,
        ))
    unary = result.unary_bespoke_adc
    rows.append((
        "unary + bespoke ADCs (same model)", f"{unary.accuracy * 100:.1f}",
        unary.hardware.total_area_mm2, unary.hardware.total_power_mw,
        unary.hardware.total_power_mw <= 2.0,
    ))
    chosen = result.selected.get(0.01)
    if chosen is not None:
        rows.append((
            "proposed co-design (<=1% loss)", f"{chosen.accuracy * 100:.1f}",
            chosen.hardware.total_area_mm2, chosen.hardware.total_power_mw,
            chosen.hardware.total_power_mw <= 2.0,
        ))

    print()
    print(render_table(
        ["implementation", "accuracy (%)", "area (mm2)", "power (mW)", "< 2 mW"],
        rows,
    ))

    table2 = result.table2_reduction(0.01)
    versus_approx = result.table2_reduction_vs_approximate(0.01)
    if table2 is not None:
        print(f"\nco-design vs exact baseline [2]: "
              f"{table2.area_factor:.1f}x area, {table2.power_factor:.1f}x power")
    if versus_approx is not None:
        print(f"co-design vs approximate [7]   : "
              f"{versus_approx.area_factor:.1f}x area, {versus_approx.power_factor:.1f}x power")

    self_power = result.self_power(0.01)
    if self_power is not None:
        print(f"\nwearable patch total (with {result.baseline.hardware.n_inputs} printed "
              f"sensors): {self_power.total_power_mw:.3f} mW of the "
              f"{self_power.harvester_budget_mw:.1f} mW harvester budget -> "
              f"{'self-powered' if self_power.is_self_powered else 'not self-powered'}")


if __name__ == "__main__":
    main()
