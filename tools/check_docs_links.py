"""Markdown link checker for the repo's documentation (stdlib only).

Scans every ``*.md`` file in the repository for inline links and image
references (``[text](target)`` / ``![alt](target)``) and verifies that each
relative target resolves to an existing file or directory.  External links
(``http://``, ``https://``, ``mailto:``) and pure in-page anchors (``#...``)
are skipped; a ``path#anchor`` target is checked for the ``path`` part only.

Used by the ``docs-check`` step of the fast CI gate::

    python tools/check_docs_links.py

Exit status 0 when every link resolves, 1 otherwise (each broken link is
listed as ``file:line: broken link 'target'``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link/image: ``[text](target)`` with no nested brackets.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that point outside the repository and are not checked.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

#: Directory names never scanned for markdown files.
_SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", ".pytest_cache"}


def iter_markdown_links(text: str):
    """Yield ``(line_number, target)`` for every inline link in ``text``.

    Fenced code blocks (``` / ~~~) are skipped: their bracketed text is
    code, not navigation.
    """
    in_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.lstrip()
        if stripped.startswith("```") or stripped.startswith("~~~"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield line_number, match.group(1)


def check_file(path: Path, repo_root: Path) -> list[str]:
    """Broken-link messages for one markdown file (empty when clean)."""
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    for line_number, target in iter_markdown_links(text):
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        resolved = target.split("#", 1)[0]
        if not resolved:
            continue
        if resolved.startswith("/"):
            candidate = repo_root / resolved.lstrip("/")
        else:
            candidate = path.parent / resolved
        if not candidate.exists():
            rel = path.relative_to(repo_root)
            problems.append(f"{rel}:{line_number}: broken link '{target}'")
    return problems


def find_markdown_files(repo_root: Path) -> list[Path]:
    """Every ``*.md`` file under ``repo_root``, skipping tool directories."""
    return sorted(
        path
        for path in repo_root.rglob("*.md")
        if not any(part in _SKIP_DIRS for part in path.parts)
    )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    repo_root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parents[1]
    files = find_markdown_files(repo_root)
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path, repo_root))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"docs-check: {len(files)} markdown files, "
        f"{len(problems)} broken links"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
