"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
computation (running the co-design framework over the eight benchmarks) is
done once per pytest session through ``repro.analysis.experiments`` (which
caches per configuration) and shared by all benchmark files; the
``benchmark`` fixture then measures the run and each file writes the rendered
rows both to stdout and to ``benchmarks/results/<name>.txt``.

Environment knobs
-----------------
``REPRO_BENCH_FAST=1``
    Restrict the suite to the four small benchmarks (quick smoke runs).
``REPRO_BENCH_SEED=<int>``
    Change the global seed (default 0).
``REPRO_BENCH_JOBS=<int>``
    Worker processes for the suite (default serial; 0 = one per CPU).
``REPRO_BENCH_CACHE_DIR=<path>``
    Location of the on-disk result store (default: ``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro/results``); a CI job can point this at a cached
    workspace directory so reruns skip the sweep entirely.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.experiments import run_benchmark_suite

RESULTS_DIR = Path(__file__).parent / "results"


def _fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "0") == "1"


def _seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def _jobs() -> int | None:
    raw = os.environ.get("REPRO_BENCH_JOBS")
    return int(raw) if raw else None


def _cache_dir() -> str | None:
    return os.environ.get("REPRO_BENCH_CACHE_DIR") or None


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Global seed of the benchmark run."""
    return _seed()


@pytest.fixture(scope="session")
def suite_results():
    """Co-design results over the benchmark suite (no approximate baseline)."""
    return run_benchmark_suite(
        seed=_seed(),
        include_approximate_baseline=False,
        fast=_fast_mode(),
        jobs=_jobs(),
        cache_dir=_cache_dir(),
    )


@pytest.fixture(scope="session")
def suite_results_with_approx():
    """Co-design results including the approximate baseline [7] (Table II)."""
    return run_benchmark_suite(
        seed=_seed(),
        include_approximate_baseline=True,
        fast=_fast_mode(),
        jobs=_jobs(),
        cache_dir=_cache_dir(),
    )


@pytest.fixture(scope="session")
def write_report():
    """Write a rendered report to benchmarks/results/ and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")
        return path

    return _write
