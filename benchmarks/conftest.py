"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
computation (running the co-design framework over the eight benchmarks) is
done once per pytest session through ``repro.analysis.experiments`` (which
caches per configuration) and shared by all benchmark files; the
``benchmark`` fixture then measures the run and each file writes the rendered
rows both to stdout and to ``benchmarks/results/<name>.txt``.

Environment knobs
-----------------
``REPRO_BENCH_FAST=1``
    Restrict the suite to the four small benchmarks (quick smoke runs).
``REPRO_BENCH_SEED=<int>``
    Change the global seed (default 0).
``REPRO_BENCH_JOBS=<int>``
    Worker processes for the suite (default serial; 0 = one per CPU).
``REPRO_BENCH_CACHE_DIR=<path>``
    Location of the on-disk result store (default: ``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro/results``); a CI job can point this at a cached
    workspace directory so reruns skip the sweep entirely.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.analysis.experiments import run_benchmark_suite

RESULTS_DIR = Path(__file__).parent / "results"

#: Schema version of the ``BENCH_<name>.json`` perf-trajectory files.  Bump
#: only when a field is renamed or removed; adding fields is backwards
#: compatible (``benchmarks/check_regression.py`` reads by key).
BENCH_SCHEMA_VERSION = 1


def _git_sha() -> str:
    """Commit being measured: CI's GITHUB_SHA, else the local HEAD."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "0") == "1"


def _seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def _jobs() -> int | None:
    raw = os.environ.get("REPRO_BENCH_JOBS")
    return int(raw) if raw else None


def _cache_dir() -> str | None:
    return os.environ.get("REPRO_BENCH_CACHE_DIR") or None


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Global seed of the benchmark run."""
    return _seed()


@pytest.fixture(scope="session")
def suite_results():
    """Co-design results over the benchmark suite (no approximate baseline)."""
    return run_benchmark_suite(
        seed=_seed(),
        include_approximate_baseline=False,
        fast=_fast_mode(),
        jobs=_jobs(),
        cache_dir=_cache_dir(),
    )


@pytest.fixture(scope="session")
def suite_results_with_approx():
    """Co-design results including the approximate baseline [7] (Table II)."""
    return run_benchmark_suite(
        seed=_seed(),
        include_approximate_baseline=True,
        fast=_fast_mode(),
        jobs=_jobs(),
        cache_dir=_cache_dir(),
    )


@pytest.fixture(scope="session")
def write_bench_json():
    """Write a machine-readable ``BENCH_<name>.json`` perf-trajectory file.

    Each row is one measured workload::

        {"name": ..., "dataset": ..., "samples_per_sec": ..., "unit": ...,
         "speedup": ...}

    ``samples_per_sec`` is the absolute throughput of the fast path (in
    ``unit``; trials/s for Monte-Carlo rows), ``speedup`` its ratio over the
    reference path measured in the same process.  The envelope stamps the
    schema version, the git sha and the UTC date so nightly CI artifacts form
    a comparable trajectory; ``benchmarks/check_regression.py`` gates the
    ``speedup`` fields against ``benchmarks/baselines.json``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, rows: list[dict]) -> Path:
        path = RESULTS_DIR / f"BENCH_{name}.json"
        payload = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "bench": name,
            "git_sha": _git_sha(),
            "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "rows": rows,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\n=== BENCH_{name}.json ===\n{json.dumps(payload, indent=2, sort_keys=True)}")
        return path

    return _write


@pytest.fixture(scope="session")
def write_report():
    """Write a rendered report to benchmarks/results/ and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")
        return path

    return _write
