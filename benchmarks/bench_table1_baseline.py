"""Table I -- evaluation of the baseline bespoke decision trees [2].

Regenerates, per benchmark dataset: accuracy, number of tree comparators,
number of used inputs, ADC and total area, ADC and total power.  The paper's
headline observations are asserted: ADCs dominate the power (74 % on
average in the paper), account for a large share of the area (~40 %), and no
baseline design fits the 2 mW printed-harvester budget.
"""

from repro.analysis.render import render_table
from repro.analysis.tables import table1_rows, table1_summary


def _render(rows, summary) -> str:
    table = render_table(
        ["dataset", "acc (%)", "#comp", "#inputs", "ADC area (mm2)",
         "total area (mm2)", "ADC power (mW)", "total power (mW)", "self-powered"],
        [
            (r["dataset"], r["accuracy_pct"], r["n_comparators"], r["n_inputs"],
             r["adc_area_mm2"], r["total_area_mm2"], r["adc_power_mw"],
             r["total_power_mw"], r["self_powered"])
            for r in rows
        ],
    )
    footer = (
        f"\nAverages: total area {summary['average_total_area_mm2']:.1f} mm2 "
        f"(paper: 102 mm2), total power {summary['average_total_power_mw']:.2f} mW "
        f"(paper: 8.5 mW), ADC share {summary['average_adc_area_fraction'] * 100:.0f}% of area "
        f"(paper: 40%) / {summary['average_adc_power_fraction'] * 100:.0f}% of power (paper: 74%)"
    )
    return table + footer


def test_table1_baseline_bespoke_trees(benchmark, suite_results, write_report):
    """Regenerate Table I from the already-run co-design suite."""
    rows = benchmark.pedantic(
        lambda: table1_rows(suite_results), rounds=1, iterations=1
    )
    summary = table1_summary(rows)
    write_report("table1_baseline", _render(rows, summary))

    assert len(rows) == len(suite_results)
    # Headline shapes of Table I.
    assert summary["average_adc_power_fraction"] > 0.5
    assert summary["average_adc_area_fraction"] > 0.2
    assert all(not row["self_powered"] for row in rows), (
        "no baseline design should fit the 2 mW harvester budget"
    )
