"""Ablation -- sensitivity of the co-design to the tree depth.

The depth hyperparameter drives both model quality and, in the proposed
architecture, the amount of two-level label logic and the number of distinct
unary digits.  This ablation sweeps the paper's depth grid at tau = 0.01 on
one benchmark (vertebral_3c) and reports accuracy and hardware per depth.
"""

from repro.analysis.render import render_table
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.exploration import DEFAULT_DEPTHS, proposed_hardware_report
from repro.datasets.registry import load_dataset
from repro.mltrees.evaluation import accuracy_score, train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.pdk.egfet import default_technology

DATASET = "vertebral_3c"
TAU = 0.01


def _sweep(seed: int = 0):
    technology = default_technology()
    dataset = load_dataset(DATASET, seed=seed)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=seed
    )
    X_train_levels = quantize_dataset(X_train)
    X_test_levels = quantize_dataset(X_test)

    rows = []
    for depth in DEFAULT_DEPTHS:
        tree = ADCAwareTrainer(max_depth=depth, gini_threshold=TAU, seed=seed).fit(
            X_train_levels, y_train, dataset.n_classes
        )
        accuracy = accuracy_score(y_test, tree.predict_levels(X_test_levels))
        hardware = proposed_hardware_report(tree, technology, name=f"depth={depth}")
        rows.append(
            {
                "depth": depth,
                "accuracy_pct": accuracy * 100.0,
                "decision_nodes": tree.n_decision_nodes,
                "adc_comparators": hardware.n_adc_comparators,
                "total_area_mm2": hardware.total_area_mm2,
                "total_power_mw": hardware.total_power_mw,
            }
        )
    return rows


def _render(rows) -> str:
    table = render_table(
        ["depth", "accuracy (%)", "#decision nodes", "#ADC comparators",
         "area (mm2)", "power (mW)"],
        [
            (r["depth"], r["accuracy_pct"], r["decision_nodes"],
             r["adc_comparators"], r["total_area_mm2"], r["total_power_mw"])
            for r in rows
        ],
    )
    return f"ADC-aware training on '{DATASET}' with tau = {TAU}\n" + table


def test_ablation_depth_sensitivity(benchmark, bench_seed, write_report):
    """Sweep the depth grid at fixed tau."""
    rows = benchmark.pedantic(lambda: _sweep(bench_seed), rounds=1, iterations=1)
    write_report("ablation_depth", _render(rows))

    assert len(rows) == len(DEFAULT_DEPTHS)
    # Hardware must grow monotonically-ish with depth (more nodes => never fewer digits).
    assert rows[-1]["adc_comparators"] >= rows[0]["adc_comparators"]
    # Accuracy at the deepest setting should not collapse versus the shallowest.
    assert rows[-1]["accuracy_pct"] >= rows[0]["accuracy_pct"] - 5.0
