"""Fig. 3 -- area/power of bespoke ADCs vs number and position of output digits.

Regenerates the series behind Fig. 3 of the paper: for every output-digit
count from 1-UD to 15-UD, the area (position-independent, linear in the
count) and the power of every contiguous window of retained reference levels,
plus the conventional 4-bit flash ADC reference point (11 mm2 / 0.83 mW).
"""

from repro.analysis.figures import fig3_series
from repro.analysis.render import render_table
from repro.pdk.egfet import default_technology


def _render(series: dict) -> str:
    rows = [
        (
            point["n_unary_digits"],
            point["start_level"],
            point["levels"][-1],
            point["area_mm2"],
            point["power_uw"],
        )
        for point in series["points"]
    ]
    table = render_table(
        ["#UD", "first level", "last level", "area (mm2)", "power (uW)"], rows
    )
    footer = (
        f"\nConventional 4-bit flash ADC: {series['conventional_area_mm2']:.2f} mm2, "
        f"{series['conventional_power_uw'] / 1000.0:.3f} mW"
        f"\n(paper: 11 mm2, 0.83 mW; bespoke area 0.2-0.6 mm2, "
        f"4-UD power ~47-205 uW)"
    )
    return table + footer


def test_fig3_bespoke_adc_scaling(benchmark, write_report):
    """Generate the Fig. 3 sweep and validate its headline shapes."""
    technology = default_technology()
    series = benchmark(fig3_series, technology, 4)

    write_report("fig3_bespoke_adc_scaling", _render(series))

    # Shape checks mirroring the paper's observations.
    four_ud = [p for p in series["points"] if p["n_unary_digits"] == 4]
    powers = sorted(p["power_uw"] for p in four_ud)
    assert powers[-1] / powers[0] > 2.5          # strong position dependence
    areas = {p["n_unary_digits"]: p["area_mm2"] for p in series["points"]}
    assert areas[15] > areas[1]                   # linear growth with #UD
    assert series["conventional_area_mm2"] > 10 * areas[15]
