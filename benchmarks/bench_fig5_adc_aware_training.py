"""Fig. 5 -- additional gains delivered by the ADC-aware training.

For the accuracy-loss constraints 0 %, 1 % and 5 %, the best co-designed
classifier from the depth x tau exploration is compared against the Fig. 4
design (same architecture, ADC-unaware model).  The paper reports average
reductions of 11 % area / 15 % power at 0 % loss growing to 45 % / 57 % at
5 % loss; the key shape is that the gains grow with the allowed loss.
"""

from repro.analysis.figures import fig5_series
from repro.analysis.render import render_table

ACCURACY_LOSSES = (0.0, 0.01, 0.05)


def _render(panels: dict) -> str:
    sections = []
    for loss, panel in panels.items():
        table = render_table(
            ["dataset", "area reduction (%)", "power reduction (%)"],
            [
                (row["abbreviation"], row["area_reduction_pct"], row["power_reduction_pct"])
                for row in panel["rows"]
            ],
        )
        sections.append(
            f"--- accuracy loss <= {loss:.0%} ---\n{table}\n"
            f"Averages: {panel['average_area_reduction_pct']:.1f}% area, "
            f"{panel['average_power_reduction_pct']:.1f}% power"
        )
    sections.append(
        "(paper averages: 11%/15% at 0% loss, ~45%/57% at 5% loss; gains grow "
        "with the allowed accuracy loss)"
    )
    return "\n\n".join(sections)


def test_fig5_adc_aware_training_gains(benchmark, suite_results, write_report):
    """Regenerate the Fig. 5 panels."""
    panels = benchmark.pedantic(
        lambda: fig5_series(suite_results, ACCURACY_LOSSES), rounds=1, iterations=1
    )
    write_report("fig5_adc_aware_training", _render(panels))

    assert set(panels) == set(ACCURACY_LOSSES)
    averages_power = [
        panels[loss]["average_power_reduction_pct"] for loss in ACCURACY_LOSSES
    ]
    averages_area = [
        panels[loss]["average_area_reduction_pct"] for loss in ACCURACY_LOSSES
    ]
    # The ADC-aware training must help on average, and help more as the
    # accuracy-loss budget grows (the central message of Fig. 5).
    assert averages_power[0] > 0.0
    assert averages_area[0] > 0.0
    assert averages_power[-1] >= averages_power[0]
    assert averages_area[-1] >= averages_area[0]
