"""Runtime benchmarks of the training and exploration machinery.

The paper notes that the whole brute-force exploration takes about 6 minutes
per dataset on a Xeon server because the trainings are independent.  These
benchmarks time the Python implementation's building blocks with
pytest-benchmark statistics (multiple rounds): one ADC-aware training, one
conventional training, and one unary translation + hardware costing.
"""

import pytest

from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.exploration import proposed_hardware_report
from repro.datasets.registry import load_dataset
from repro.mltrees.cart import CARTTrainer
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.pdk.egfet import default_technology

DATASET = "cardio"


@pytest.fixture(scope="module")
def training_data():
    dataset = load_dataset(DATASET, seed=0)
    X_train, _, y_train, _ = train_test_split(dataset.X, dataset.y, 0.3, seed=0)
    return quantize_dataset(X_train), y_train, dataset.n_classes


@pytest.fixture(scope="module")
def trained_tree(training_data):
    X_levels, y, n_classes = training_data
    return ADCAwareTrainer(max_depth=6, gini_threshold=0.01, seed=0).fit(
        X_levels, y, n_classes
    )


def test_runtime_cart_training(benchmark, training_data):
    """Conventional Gini training on the cardio benchmark (depth 6)."""
    X_levels, y, n_classes = training_data
    tree = benchmark(
        lambda: CARTTrainer(max_depth=6, seed=0).fit(X_levels, y, n_classes)
    )
    assert tree.n_decision_nodes > 0


def test_runtime_adc_aware_training(benchmark, training_data):
    """ADC-aware training (Algorithm 1) on the cardio benchmark (depth 6)."""
    X_levels, y, n_classes = training_data
    tree = benchmark(
        lambda: ADCAwareTrainer(max_depth=6, gini_threshold=0.01, seed=0).fit(
            X_levels, y, n_classes
        )
    )
    assert tree.n_decision_nodes > 0


def test_runtime_hardware_generation(benchmark, trained_tree):
    """Unary translation, bespoke ADC generation and costing of one tree."""
    technology = default_technology()
    report = benchmark(lambda: proposed_hardware_report(trained_tree, technology))
    assert report.total_power_uw > 0
