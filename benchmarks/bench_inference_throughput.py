"""Benchmark -- scalar vs. batch vs. bit-parallel inference throughput.

The vectorized engine evaluates whole sample matrices (and whole
``(n_trials, n_comparators)`` offset matrices) in a handful of ndarray ops
where the pre-refactor implementation looped in the interpreter, one
dict-based digit assignment per sample per trial.  This benchmark measures
both paths on the same trained classifier -- 1k-sample prediction and a
1k-trial offset Monte-Carlo -- and records samples/sec, trials/sec and the
resulting speedup so the gain stays visible in the BENCH trajectory.

The scalar reference paths are the *retained* per-row APIs
(``predict_one_level`` / ``predict_from_assignment``), i.e. exactly the old
hot loops; the batch numbers use ``predict_levels`` and
``simulate_offset_variation``.  Both pairs are asserted bit-identical before
timing, so the speedups compare equal answers.

The third tier is the packed-uint64 kernel of :mod:`repro.core.bitkernel`
(layout and semantics in ``docs/KERNELS.md``): the tree's two-level cube
logic evaluated 64 samples per machine word.  It is measured against the
batch path on a depth-8 classifier at 2^19 samples -- large enough that
both sides are out of warm-up noise -- and must clear
:data:`MIN_KERNEL_SPEEDUP` after its predictions are asserted bit-identical
to both the unary batch oracle and ``DecisionTree.predict_levels``.

Alongside the human-readable report this module emits
``benchmarks/results/BENCH_inference.json`` (see the ``write_bench_json``
fixture), the machine-readable trajectory record gated by
``benchmarks/check_regression.py``.
"""

import time

import numpy as np

from repro.analysis.render import render_table
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.bitkernel import compile_tree_kernel
from repro.core.unary_tree import UnaryDecisionTree
from repro.core.variation import (
    ComparatorOffsetModel,
    _predict_with_offsets_scalar,
    simulate_offset_variation,
)
from repro.datasets.registry import load_dataset
from repro.mltrees.evaluation import accuracy_score, train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.pdk.egfet import default_technology

DATASET = "seeds"
N_SAMPLES = 1000          # prediction batch size
N_TRIALS = 1000           # Monte-Carlo trials evaluated by the batch path
N_SCALAR_TRIALS = 20      # trials actually run through the scalar loop
SIGMA_V = 0.02
MIN_SPEEDUP = 10.0

KERNEL_DATASET = "cardio"  # widest benchmark with a stable >= 10x margin
KERNEL_DEPTH = 8
N_KERNEL_SAMPLES = 1 << 19
N_TIMING_REPEATS = 7       # best-of repeats; throughput gates time the floor
MIN_KERNEL_SPEEDUP = 10.0


def _fit(seed: int):
    dataset = load_dataset(DATASET, seed=seed)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=seed
    )
    tree = ADCAwareTrainer(max_depth=4, gini_threshold=0.01, seed=seed).fit(
        quantize_dataset(X_train), y_train, dataset.n_classes
    )
    repeats = -(-N_SAMPLES // len(X_test))  # ceil division
    X_big = np.tile(X_test, (repeats, 1))[:N_SAMPLES]
    y_big = np.tile(y_test, repeats)[:N_SAMPLES]
    return UnaryDecisionTree(tree), X_big, y_big, X_test, y_test


def _best_of(func, repeats: int = N_TIMING_REPEATS) -> float:
    """Floor of ``repeats`` wall-clock timings of ``func()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_kernel(seed: int):
    """Bit-parallel kernel vs. ndarray batch path on a depth-8 classifier."""
    dataset = load_dataset(KERNEL_DATASET, seed=seed)
    X_train, X_test, y_train, _ = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=seed
    )
    tree = ADCAwareTrainer(max_depth=KERNEL_DEPTH, gini_threshold=0.01, seed=seed).fit(
        quantize_dataset(X_train), y_train, dataset.n_classes
    )
    unary = UnaryDecisionTree(tree)
    kernel = compile_tree_kernel(tree)
    repeats = -(-N_KERNEL_SAMPLES // len(X_test))  # ceil division
    levels = quantize_dataset(np.tile(X_test, (repeats, 1))[:N_KERNEL_SAMPLES])
    digits = kernel.digit_matrix_from_levels(levels)

    # Bit-equivalence to the tree oracle comes before any timing is trusted:
    # the packed kernel, the unary batch path and the plain tree walk must
    # agree on every one of the 2^18 samples (argmax ties included).
    batch_pred = unary.predict_digit_matrix(digits)
    kernel_pred = kernel.predict_digit_matrix(digits)
    np.testing.assert_array_equal(kernel_pred, batch_pred)
    np.testing.assert_array_equal(kernel_pred, tree.predict_levels(levels))

    batch_s = _best_of(lambda: unary.predict_digit_matrix(digits))
    kernel_s = _best_of(lambda: kernel.predict_digit_matrix(digits))
    batch_rate = N_KERNEL_SAMPLES / batch_s
    kernel_rate = N_KERNEL_SAMPLES / kernel_s
    return {
        "workload": (
            f"bit-parallel kernel {N_KERNEL_SAMPLES} samples "
            f"({KERNEL_DATASET} d={KERNEL_DEPTH})"
        ),
        "ref_s": batch_s,
        "fast_s": kernel_s,
        "ref_rate": batch_rate,
        "fast_rate": kernel_rate,
        "unit": "samples/s",
        "speedup": kernel_rate / batch_rate,
    }


def _measure(seed: int):
    unary, X_big, _, X_test, y_test = _fit(seed)
    technology = default_technology()
    levels_big = quantize_dataset(X_big)

    # -- 1k-sample prediction ------------------------------------------- #
    start = time.perf_counter()
    scalar_pred = np.array(
        [unary.predict_one_level(row) for row in levels_big], dtype=np.int64
    )
    scalar_pred_s = time.perf_counter() - start

    start = time.perf_counter()
    batch_pred = unary.predict_levels(levels_big)
    batch_pred_s = time.perf_counter() - start
    np.testing.assert_array_equal(batch_pred, scalar_pred)

    # -- offset Monte-Carlo --------------------------------------------- #
    model = ComparatorOffsetModel(sigma_v=SIGMA_V)
    rng = np.random.default_rng(seed)
    comparators = unary.comparators
    scalar_accuracies = []
    start = time.perf_counter()
    for _ in range(N_SCALAR_TRIALS):
        offsets = dict(zip(comparators, model.sample(rng, len(comparators))))
        predictions = _predict_with_offsets_scalar(
            unary, X_test, offsets, technology.vdd
        )
        scalar_accuracies.append(accuracy_score(y_test, predictions))
    scalar_mc_s = time.perf_counter() - start

    start = time.perf_counter()
    analysis = simulate_offset_variation(
        unary, X_test, y_test, SIGMA_V, n_trials=N_TRIALS,
        technology=technology, seed=seed,
    )
    batch_mc_s = time.perf_counter() - start
    # Same seed => the first scalar trials must reproduce bit-identically.
    assert list(analysis.accuracies[:N_SCALAR_TRIALS]) == scalar_accuracies

    scalar_pred_rate = len(levels_big) / scalar_pred_s
    batch_pred_rate = len(levels_big) / batch_pred_s
    scalar_mc_rate = N_SCALAR_TRIALS / scalar_mc_s
    batch_mc_rate = N_TRIALS / batch_mc_s
    return [
        {
            "workload": f"predict {len(levels_big)} samples",
            "ref_s": scalar_pred_s,
            "fast_s": batch_pred_s,
            "ref_rate": scalar_pred_rate,
            "fast_rate": batch_pred_rate,
            "unit": "samples/s",
            "speedup": batch_pred_rate / scalar_pred_rate,
        },
        {
            "workload": f"offset Monte-Carlo {N_TRIALS} trials",
            "ref_s": scalar_mc_s * (N_TRIALS / N_SCALAR_TRIALS),
            "fast_s": batch_mc_s,
            "ref_rate": scalar_mc_rate,
            "fast_rate": batch_mc_rate,
            "unit": "trials/s",
            "speedup": batch_mc_rate / scalar_mc_rate,
        },
        _measure_kernel(seed),
    ]


def _render(rows) -> str:
    table = render_table(
        ["workload", "reference (s)", "fast (s)", "reference rate", "fast rate",
         "unit", "speedup (x)"],
        [
            (r["workload"], r["ref_s"], r["fast_s"], r["ref_rate"],
             r["fast_rate"], r["unit"], r["speedup"])
            for r in rows
        ],
    )
    return (
        f"Inference throughput: scalar -> batch on {DATASET}, batch -> "
        f"bit-parallel kernel on {KERNEL_DATASET} (scalar Monte-Carlo "
        f"extrapolated from {N_SCALAR_TRIALS} measured trials)\n" + table
    )


_BENCH_ROW_NAMES = ("batch_predict", "batch_monte_carlo", "bitparallel_kernel")
_BENCH_DATASETS = (DATASET, DATASET, KERNEL_DATASET)


def _bench_rows(rows) -> list[dict]:
    """Rows of ``BENCH_inference.json`` (schema: benchmarks/conftest.py)."""
    return [
        {
            "name": name,
            "dataset": dataset,
            "samples_per_sec": row["fast_rate"],
            "unit": row["unit"],
            "speedup": row["speedup"],
        }
        for name, dataset, row in zip(_BENCH_ROW_NAMES, _BENCH_DATASETS, rows)
    ]


def test_batch_inference_throughput(benchmark, bench_seed, write_report, write_bench_json):
    """Batch is >= 10x over scalar; the packed kernel >= 10x over batch."""
    rows = benchmark.pedantic(lambda: _measure(bench_seed), rounds=1, iterations=1)
    write_report("inference_throughput", _render(rows))
    write_bench_json("inference", _bench_rows(rows))
    for row in rows[:-1]:
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{row['workload']}: only {row['speedup']:.1f}x over the scalar loop"
        )
    kernel_row = rows[-1]
    assert kernel_row["speedup"] >= MIN_KERNEL_SPEEDUP, (
        f"{kernel_row['workload']}: only {kernel_row['speedup']:.1f}x over the "
        f"batch path (need >= {MIN_KERNEL_SPEEDUP:.0f}x)"
    )
