"""Benchmark -- scalar vs. batch inference and Monte-Carlo throughput.

The vectorized engine evaluates whole sample matrices (and whole
``(n_trials, n_comparators)`` offset matrices) in a handful of ndarray ops
where the pre-refactor implementation looped in the interpreter, one
dict-based digit assignment per sample per trial.  This benchmark measures
both paths on the same trained classifier -- 1k-sample prediction and a
1k-trial offset Monte-Carlo -- and records samples/sec, trials/sec and the
resulting speedup so the gain stays visible in the BENCH trajectory.

The scalar reference paths are the *retained* per-row APIs
(``predict_one_level`` / ``predict_from_assignment``), i.e. exactly the old
hot loops; the batch numbers use ``predict_levels`` and
``simulate_offset_variation``.  Both pairs are asserted bit-identical before
timing, so the speedups compare equal answers.
"""

import time

import numpy as np

from repro.analysis.render import render_table
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.unary_tree import UnaryDecisionTree
from repro.core.variation import (
    ComparatorOffsetModel,
    _predict_with_offsets_scalar,
    simulate_offset_variation,
)
from repro.datasets.registry import load_dataset
from repro.mltrees.evaluation import accuracy_score, train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.pdk.egfet import default_technology

DATASET = "seeds"
N_SAMPLES = 1000          # prediction batch size
N_TRIALS = 1000           # Monte-Carlo trials evaluated by the batch path
N_SCALAR_TRIALS = 20      # trials actually run through the scalar loop
SIGMA_V = 0.02
MIN_SPEEDUP = 10.0


def _fit(seed: int):
    dataset = load_dataset(DATASET, seed=seed)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=seed
    )
    tree = ADCAwareTrainer(max_depth=4, gini_threshold=0.01, seed=seed).fit(
        quantize_dataset(X_train), y_train, dataset.n_classes
    )
    repeats = -(-N_SAMPLES // len(X_test))  # ceil division
    X_big = np.tile(X_test, (repeats, 1))[:N_SAMPLES]
    y_big = np.tile(y_test, repeats)[:N_SAMPLES]
    return UnaryDecisionTree(tree), X_big, y_big, X_test, y_test


def _measure(seed: int):
    unary, X_big, _, X_test, y_test = _fit(seed)
    technology = default_technology()
    levels_big = quantize_dataset(X_big)

    # -- 1k-sample prediction ------------------------------------------- #
    start = time.perf_counter()
    scalar_pred = np.array(
        [unary.predict_one_level(row) for row in levels_big], dtype=np.int64
    )
    scalar_pred_s = time.perf_counter() - start

    start = time.perf_counter()
    batch_pred = unary.predict_levels(levels_big)
    batch_pred_s = time.perf_counter() - start
    np.testing.assert_array_equal(batch_pred, scalar_pred)

    # -- offset Monte-Carlo --------------------------------------------- #
    model = ComparatorOffsetModel(sigma_v=SIGMA_V)
    rng = np.random.default_rng(seed)
    comparators = unary.comparators
    scalar_accuracies = []
    start = time.perf_counter()
    for _ in range(N_SCALAR_TRIALS):
        offsets = dict(zip(comparators, model.sample(rng, len(comparators))))
        predictions = _predict_with_offsets_scalar(
            unary, X_test, offsets, technology.vdd
        )
        scalar_accuracies.append(accuracy_score(y_test, predictions))
    scalar_mc_s = time.perf_counter() - start

    start = time.perf_counter()
    analysis = simulate_offset_variation(
        unary, X_test, y_test, SIGMA_V, n_trials=N_TRIALS,
        technology=technology, seed=seed,
    )
    batch_mc_s = time.perf_counter() - start
    # Same seed => the first scalar trials must reproduce bit-identically.
    assert list(analysis.accuracies[:N_SCALAR_TRIALS]) == scalar_accuracies

    scalar_pred_rate = len(levels_big) / scalar_pred_s
    batch_pred_rate = len(levels_big) / batch_pred_s
    scalar_mc_rate = N_SCALAR_TRIALS / scalar_mc_s
    batch_mc_rate = N_TRIALS / batch_mc_s
    return [
        {
            "workload": f"predict {len(levels_big)} samples",
            "scalar_s": scalar_pred_s,
            "batch_s": batch_pred_s,
            "scalar_rate": scalar_pred_rate,
            "batch_rate": batch_pred_rate,
            "unit": "samples/s",
            "speedup": batch_pred_rate / scalar_pred_rate,
        },
        {
            "workload": f"offset Monte-Carlo {N_TRIALS} trials",
            "scalar_s": scalar_mc_s * (N_TRIALS / N_SCALAR_TRIALS),
            "batch_s": batch_mc_s,
            "scalar_rate": scalar_mc_rate,
            "batch_rate": batch_mc_rate,
            "unit": "trials/s",
            "speedup": batch_mc_rate / scalar_mc_rate,
        },
    ]


def _render(rows) -> str:
    table = render_table(
        ["workload", "scalar (s)", "batch (s)", "scalar rate", "batch rate",
         "unit", "speedup (x)"],
        [
            (r["workload"], r["scalar_s"], r["batch_s"], r["scalar_rate"],
             r["batch_rate"], r["unit"], r["speedup"])
            for r in rows
        ],
    )
    return (
        f"Vectorized batch-inference throughput on {DATASET} "
        f"(scalar Monte-Carlo extrapolated from {N_SCALAR_TRIALS} measured "
        f"trials)\n" + table
    )


def test_batch_inference_throughput(benchmark, bench_seed, write_report):
    """Batch prediction and Monte-Carlo are >= 10x faster than the old loops."""
    rows = benchmark.pedantic(lambda: _measure(bench_seed), rounds=1, iterations=1)
    write_report("inference_throughput", _render(rows))
    for row in rows:
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{row['workload']}: only {row['speedup']:.1f}x over the scalar loop"
        )
