"""Benchmark -- micro-batched serving vs single-request scoring, with SLOs.

The serving stack (:mod:`repro.serve`) amortizes per-request cost into one
ADC conversion and one kernel call per flush.  This benchmark quantifies
that amortization on the cardio depth-8 classifier (the PR-6 kernel
workload) and attaches open-loop latency SLO rows for the two deployment
scenario streams.

Three measurement groups:

1. **Micro-batch capacity** -- a closed loop of 256 concurrent clients
   through :class:`~repro.serve.scorer.AsyncScorer` versus the
   single-request reference (``score_one``: one quantization + one 1-row
   engine call per request, exactly a request-per-call server).  Measured
   for both engines; micro-batched bitparallel must clear
   :data:`MIN_SERVING_SPEEDUP` -- the packed kernel pays a near-fixed
   per-word cost, so batching 256 requests into 4 uint64 words collapses
   its per-request cost by two orders of magnitude.
2. **Batch-size sweep** -- the same closed loop at max_batch_size in
   {16, 64, 256} for both engines (informational: shows where each engine's
   flush cost stops dominating the asyncio per-request overhead).
3. **Open-loop SLO** -- the healthcare-patch (vertebral_2c) and
   smart-packaging freshness streams replayed at a fixed rate with
   coordinated-omission-safe latency accounting; the recorded ``speedup``
   is the *SLO headroom* ``p99_slo / p99`` (>= 1 means the SLO holds).

Bit-identity of the scorer against ``tree.predict_levels`` over a ragged
concurrent request mix is asserted before any timing is trusted.  Emits
``benchmarks/results/BENCH_serving.json`` for the perf-trajectory gate
(``check_regression.py`` + ``baselines.json``).
"""

import asyncio
import tempfile
import time

import numpy as np

from repro.analysis.render import render_table
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import make_classification_blobs
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.serve.batching import BatchingConfig
from repro.serve.loadgen import run_closed_loop, run_open_loop
from repro.serve.registry import ModelRegistry, promote_design
from repro.serve.scorer import AsyncScorer

DATASET = "cardio"
DEPTH = 8
TAU = 0.0
N_CLIENTS = 256            # concurrent closed-loop clients (saturation)
REQUESTS_PER_CLIENT = 40
N_SINGLE = 1500            # single-request reference calls
N_TIMING_REPEATS = 3       # best-of repeats; throughput gates time the floor
BATCH_SWEEP = (16, 64, 256)
MIN_SERVING_SPEEDUP = 5.0  # acceptance: micro-batched bitparallel >= 5x single

#: Open-loop SLO scenarios: (row dataset tag, stream rate, p99 SLO).
SLO_RATE_HZ = 2000.0
SLO_DURATION_S = 1.5
SLO_P99_MS = 50.0


def _promote(seed: int, registry_dir: str, cache_dir: str):
    """Promote the cardio depth-8 design through a scratch registry."""
    return promote_design(
        ModelRegistry(registry_dir),
        DATASET,
        DEPTH,
        TAU,
        seed=seed,
        cache_dir=cache_dir,
    )


def _request_stream(seed: int) -> np.ndarray:
    dataset = load_dataset(DATASET, seed=seed)
    _, X_test, _, _ = train_test_split(dataset.X, dataset.y, test_size=0.3, seed=seed)
    repeats = -(-4096 // len(X_test))  # ceil division
    return np.tile(X_test, (repeats, 1))[:4096]


def _assert_bit_identity(artifact, rows: np.ndarray, seed: int) -> None:
    """Ragged concurrent mixes through both engines == scalar predict_levels."""
    rng = np.random.default_rng(seed)
    expected = artifact.tree.predict_levels(
        quantize_dataset(rows, artifact.resolution_bits)
    )

    async def mixed(engine: str) -> list[int]:
        got: dict[int, int] = {}
        async with AsyncScorer(
            artifact,
            engine=engine,
            config=BatchingConfig(max_batch_size=64, max_wait_us=100.0),
        ) as scorer:

            async def burst(indices) -> None:
                labels = await asyncio.gather(
                    *(scorer.score(rows[i]) for i in indices)
                )
                got.update(zip(indices, labels))

            # Ragged mix: bursts of wildly different sizes, interleaved.
            cursor, bursts = 0, []
            while cursor < len(rows):
                size = int(rng.integers(1, 97))
                bursts.append(list(range(cursor, min(cursor + size, len(rows)))))
                cursor += size
            await asyncio.gather(*(burst(b) for b in bursts))
        return [got[i] for i in range(len(rows))]

    for engine in ("batch", "bitparallel"):
        served = asyncio.run(mixed(engine))
        np.testing.assert_array_equal(np.asarray(served), expected)


def _measure_single(artifact, rows: np.ndarray, engine: str) -> float:
    """Requests/s of the single-request reference path (best-of repeats)."""
    scorer = AsyncScorer(artifact, engine=engine)
    for row in rows[:16]:  # warm-up: kernel compile, numpy caches
        scorer.score_one(row)
    best = float("inf")
    for _ in range(N_TIMING_REPEATS):
        start = time.perf_counter()
        for i in range(N_SINGLE):
            scorer.score_one(rows[i % len(rows)])
        best = min(best, time.perf_counter() - start)
    return N_SINGLE / best


def _measure_microbatch(
    artifact, rows: np.ndarray, engine: str, max_batch_size: int
) -> tuple[float, float]:
    """(requests/s, mean batch) of the saturated closed loop (best-of)."""

    async def once() -> tuple[float, float]:
        async with AsyncScorer(
            artifact,
            engine=engine,
            config=BatchingConfig(
                max_batch_size=max_batch_size, max_wait_us=200.0
            ),
        ) as scorer:
            report = await run_closed_loop(
                scorer,
                rows,
                n_clients=N_CLIENTS,
                requests_per_client=REQUESTS_PER_CLIENT,
            )
        return report.throughput_hz, report.batcher.mean_batch

    best_rate, mean_batch = 0.0, 0.0
    for _ in range(N_TIMING_REPEATS):
        rate, batch = asyncio.run(once())
        if rate > best_rate:
            best_rate, mean_batch = rate, batch
    return best_rate, mean_batch


def _measure_slo(seed: int, registry_dir: str, cache_dir: str) -> list[dict]:
    rows_out = []
    # The healthcare-patch posture stream (vertebral_2c, a registry-promoted
    # model) and the smart-packaging freshness stream (the synthetic
    # gas-sensor array of examples/smart_packaging_freshness.py: 6 printed
    # sensors, 3 classes, served by its own freshly trained classifier).
    freshness_X, freshness_y = make_classification_blobs(
        n_samples=600, n_features=6, n_classes=3, seed=seed
    )
    for tag, stream in (("vertebral_2c", None), ("freshness", freshness_X)):
        if tag == "freshness":
            X_train, _, y_train, _ = train_test_split(
                freshness_X, freshness_y, test_size=0.3, seed=seed
            )
            model = ADCAwareTrainer(
                max_depth=4, gini_threshold=0.01, seed=seed
            ).fit(quantize_dataset(X_train), y_train, 3)
        else:
            stream = load_dataset(tag, seed=seed).X
            model = promote_design(
                ModelRegistry(registry_dir),
                tag,
                4,
                0.0,
                seed=seed,
                cache_dir=cache_dir,
            )

        async def drive():
            async with AsyncScorer(model, engine="bitparallel") as scorer:
                return await run_open_loop(
                    scorer, stream, SLO_RATE_HZ, duration_s=SLO_DURATION_S
                )

        report = asyncio.run(drive())
        rows_out.append(
            {
                "workload": (
                    f"open loop {tag} @ {SLO_RATE_HZ:.0f}/s for {SLO_DURATION_S:g}s"
                ),
                "dataset": tag,
                "rate": report.throughput_hz,
                "p50_ms": report.p50_ms,
                "p99_ms": report.p99_ms,
                "headroom": SLO_P99_MS / max(report.p99_ms, 1e-9),
            }
        )
    return rows_out


def _measure(seed: int) -> dict:
    with tempfile.TemporaryDirectory() as scratch:
        registry_dir = f"{scratch}/registry"
        cache_dir = f"{scratch}/cache"
        artifact = _promote(seed, registry_dir, cache_dir)
        rows = _request_stream(seed)
        _assert_bit_identity(artifact, rows, seed)

        capacity = {}
        sweep = []
        for engine in ("batch", "bitparallel"):
            single_rate = _measure_single(artifact, rows, engine)
            for max_batch in BATCH_SWEEP:
                micro_rate, mean_batch = _measure_microbatch(
                    artifact, rows, engine, max_batch
                )
                sweep.append(
                    {
                        "engine": engine,
                        "max_batch": max_batch,
                        "single_rate": single_rate,
                        "micro_rate": micro_rate,
                        "mean_batch": mean_batch,
                        "speedup": micro_rate / single_rate,
                    }
                )
            # The headline capacity row uses the largest sweep point.
            capacity[engine] = sweep[-1]
        slo = _measure_slo(seed, registry_dir, cache_dir)
    return {"capacity": capacity, "sweep": sweep, "slo": slo}


def _render(measured) -> str:
    sweep_table = render_table(
        ["engine", "max batch", "single req/s", "micro req/s", "mean batch",
         "speedup (x)"],
        [
            (r["engine"], r["max_batch"], r["single_rate"], r["micro_rate"],
             r["mean_batch"], r["speedup"])
            for r in measured["sweep"]
        ],
    )
    slo_table = render_table(
        ["stream", "achieved req/s", "p50 (ms)", "p99 (ms)",
         f"headroom vs {SLO_P99_MS:g}ms SLO (x)"],
        [
            (r["dataset"], r["rate"], r["p50_ms"], r["p99_ms"], r["headroom"])
            for r in measured["slo"]
        ],
    )
    return (
        f"Serving throughput on {DATASET} depth {DEPTH}: micro-batched "
        f"AsyncScorer ({N_CLIENTS} closed-loop clients) vs single-request "
        f"scoring\n{sweep_table}\n\nOpen-loop SLO "
        f"({SLO_RATE_HZ:.0f} req/s, coordinated-omission-safe "
        f"percentiles)\n{slo_table}"
    )


def _bench_rows(measured) -> list[dict]:
    """Rows of ``BENCH_serving.json`` (schema: benchmarks/conftest.py)."""
    rows = [
        {
            "name": f"microbatch_{engine}",
            "dataset": DATASET,
            "samples_per_sec": capacity["micro_rate"],
            "unit": "requests/s",
            "speedup": capacity["speedup"],
        }
        for engine, capacity in sorted(measured["capacity"].items())
    ]
    rows.extend(
        {
            "name": "open_loop_slo",
            "dataset": r["dataset"],
            "samples_per_sec": r["rate"],
            "unit": "requests/s",
            "speedup": r["headroom"],
        }
        for r in measured["slo"]
    )
    return rows


def test_serving_throughput(benchmark, bench_seed, write_report, write_bench_json):
    """Micro-batched bitparallel serving is >= 5x the single-request path."""
    measured = benchmark.pedantic(
        lambda: _measure(bench_seed), rounds=1, iterations=1
    )
    write_report("serving_throughput", _render(measured))
    write_bench_json("serving", _bench_rows(measured))

    bitparallel = measured["capacity"]["bitparallel"]
    assert bitparallel["speedup"] >= MIN_SERVING_SPEEDUP, (
        f"micro-batched bitparallel serving only "
        f"{bitparallel['speedup']:.1f}x over single-request scoring "
        f"(need >= {MIN_SERVING_SPEEDUP:.0f}x)"
    )
    for row in measured["slo"]:
        assert row["p99_ms"] <= SLO_P99_MS, (
            f"{row['workload']}: p99 {row['p99_ms']:.2f}ms blew the "
            f"{SLO_P99_MS:g}ms SLO"
        )
