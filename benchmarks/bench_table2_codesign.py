"""Table II -- co-designed decision trees at <= 1 % accuracy loss.

For every benchmark, the most power-efficient design of the exploration that
stays within 1 % of the baseline accuracy is reported with its total
area/power and its reduction factors against the exact baseline [2] and the
approximate precision-scaled baseline [7].  Paper averages: 8.6x area and
12.2x power vs [2]; 4.4x area and 2.6x power vs [7]; every benchmark except
Pendigits below the 2 mW self-power budget.
"""

from repro.analysis.render import render_table
from repro.analysis.tables import table2_rows, table2_summary


def _render(rows, summary) -> str:
    table = render_table(
        ["dataset", "acc (%)", "depth", "tau", "area (mm2)", "power (mW)",
         "vs[2] area (x)", "vs[2] power (x)", "vs[7] area (x)", "vs[7] power (x)",
         "self-powered"],
        [
            (r["dataset"], r["accuracy_pct"], r["depth"], r["tau"], r["area_mm2"],
             r["power_mw"], r["area_reduction_vs_baseline_x"],
             r["power_reduction_vs_baseline_x"], r["area_reduction_vs_approx_x"],
             r["power_reduction_vs_approx_x"], r["self_powered"])
            for r in rows
        ],
    )
    footer = (
        f"\nAverages: {summary['average_area_mm2']:.1f} mm2 (paper: 17.6), "
        f"{summary['average_power_mw']:.2f} mW (paper: 1.26), "
        f"{summary['average_area_reduction_vs_baseline_x']:.1f}x area / "
        f"{summary['average_power_reduction_vs_baseline_x']:.1f}x power vs [2] "
        f"(paper: 8.6x / 12.2x)"
    )
    return table + footer


def test_table2_codesigned_trees(benchmark, suite_results_with_approx, write_report):
    """Regenerate Table II (including the comparison against [7])."""
    rows = benchmark.pedantic(
        lambda: table2_rows(suite_results_with_approx, accuracy_loss=0.01),
        rounds=1,
        iterations=1,
    )
    summary = table2_summary(rows)
    write_report("table2_codesign", _render(rows, summary))

    assert len(rows) == len(suite_results_with_approx)
    for row in rows:
        assert row["area_reduction_vs_baseline_x"] > 1.0
        assert row["power_reduction_vs_baseline_x"] > 1.0
    # Order-of-magnitude reductions on average, as in the paper.
    assert summary["average_area_reduction_vs_baseline_x"] > 4.0
    assert summary["average_power_reduction_vs_baseline_x"] > 6.0
    # The overwhelming majority of co-designed classifiers are self-powered
    # (the paper's Pendigits misses the budget at 1% loss; ours makes it).
    self_powered = sum(row["self_powered"] for row in rows)
    assert self_powered >= len(rows) - 1
