"""Ablation -- sensitivity of the co-design to the Gini tolerance tau.

Section III-C argues that tau trades accuracy for hardware: tau = 0 cannot
hurt accuracy (only equivalent-quality splits are reordered) while larger
values enlarge the candidate set and unlock more comparator reuse.  This
ablation fixes the depth to the baseline depth of one mid-sized benchmark
(seeds) and sweeps tau over the paper's grid, reporting accuracy, the number
of distinct ADC comparators and the total power of the resulting design.
"""

from repro.analysis.render import render_table
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.exploration import DEFAULT_TAUS, proposed_hardware_report
from repro.datasets.registry import load_dataset
from repro.mltrees.cart import fit_baseline_tree
from repro.mltrees.evaluation import accuracy_score, train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.pdk.egfet import default_technology

DATASET = "seeds"


def _sweep(seed: int = 0):
    technology = default_technology()
    dataset = load_dataset(DATASET, seed=seed)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=seed
    )
    X_train_levels = quantize_dataset(X_train)
    X_test_levels = quantize_dataset(X_test)
    baseline = fit_baseline_tree(
        X_train_levels, y_train, X_test_levels, y_test, dataset.n_classes, seed=seed
    )

    rows = []
    for tau in DEFAULT_TAUS:
        tree = ADCAwareTrainer(
            max_depth=baseline.depth, gini_threshold=tau, seed=seed
        ).fit(X_train_levels, y_train, dataset.n_classes)
        accuracy = accuracy_score(y_test, tree.predict_levels(X_test_levels))
        hardware = proposed_hardware_report(tree, technology, name=f"tau={tau:g}")
        rows.append(
            {
                "tau": tau,
                "accuracy_pct": accuracy * 100.0,
                "accuracy_delta_pct": (accuracy - baseline.test_accuracy) * 100.0,
                "adc_comparators": hardware.n_adc_comparators,
                "total_area_mm2": hardware.total_area_mm2,
                "total_power_mw": hardware.total_power_mw,
            }
        )
    return baseline, rows


def _render(baseline, rows) -> str:
    table = render_table(
        ["tau", "accuracy (%)", "delta vs baseline (%)", "#ADC comparators",
         "area (mm2)", "power (mW)"],
        [
            (r["tau"], r["accuracy_pct"], r["accuracy_delta_pct"],
             r["adc_comparators"], r["total_area_mm2"], r["total_power_mw"])
            for r in rows
        ],
    )
    header = (
        f"ADC-aware training on '{DATASET}' at the baseline depth "
        f"{baseline.depth} (baseline accuracy {baseline.test_accuracy * 100:.1f}%)\n"
    )
    return header + table


def test_ablation_tau_sensitivity(benchmark, bench_seed, write_report):
    """Sweep tau at fixed depth and check the accuracy/hardware trade-off."""
    baseline, rows = benchmark.pedantic(
        lambda: _sweep(bench_seed), rounds=1, iterations=1
    )
    write_report("ablation_tau", _render(baseline, rows))

    by_tau = {row["tau"]: row for row in rows}
    # tau = 0 must not lose noticeable accuracy vs the conventional baseline.
    assert by_tau[0.0]["accuracy_delta_pct"] >= -2.0
    # The largest tau must not need more ADC comparators than tau = 0.
    assert by_tau[max(by_tau)]["adc_comparators"] <= by_tau[0.0]["adc_comparators"]
