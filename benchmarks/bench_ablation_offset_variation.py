"""Ablation -- robustness of co-designed classifiers to comparator offsets.

Printed comparators have large input-offset variability.  The bespoke ADCs
retain very few comparators, so a natural question is how much accuracy the
co-designed classifiers lose when every retained comparator's trip point is
perturbed by a Gaussian offset.  This benchmark Monte-Carlo-simulates the
co-designed tree of two benchmarks across a range of offset sigmas (relative
to the 1 V full scale, i.e. 1 LSB of the 4-bit ADC is 62.5 mV).
"""

from repro.analysis.render import render_table
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.variation import offset_tolerance_sweep
from repro.datasets.registry import load_dataset
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.pdk.egfet import default_technology

DATASETS = ("seeds", "vertebral_3c")
SIGMAS_V = (0.0, 0.005, 0.010, 0.020, 0.040)
N_TRIALS = 25


def _sweep(seed: int = 0):
    technology = default_technology()
    rows = []
    for name in DATASETS:
        dataset = load_dataset(name, seed=seed)
        X_train, X_test, y_train, y_test = train_test_split(
            dataset.X, dataset.y, test_size=0.3, seed=seed
        )
        tree = ADCAwareTrainer(max_depth=4, gini_threshold=0.01, seed=seed).fit(
            quantize_dataset(X_train), y_train, dataset.n_classes
        )
        analyses = offset_tolerance_sweep(
            tree, X_test, y_test, sigmas_v=SIGMAS_V, n_trials=N_TRIALS,
            technology=technology, seed=seed,
        )
        for analysis in analyses:
            rows.append(
                {
                    "dataset": name,
                    "sigma_mv": analysis.sigma_v * 1000.0,
                    "nominal_pct": analysis.nominal_accuracy * 100.0,
                    "mean_pct": analysis.mean_accuracy * 100.0,
                    "worst_pct": analysis.min_accuracy * 100.0,
                    "mean_drop_pct": analysis.mean_accuracy_drop * 100.0,
                }
            )
    return rows


def _render(rows) -> str:
    table = render_table(
        ["dataset", "offset sigma (mV)", "nominal acc (%)", "mean acc (%)",
         "worst acc (%)", "mean drop (%)"],
        [
            (r["dataset"], r["sigma_mv"], r["nominal_pct"], r["mean_pct"],
             r["worst_pct"], r["mean_drop_pct"])
            for r in rows
        ],
    )
    return (
        f"Monte-Carlo comparator-offset robustness ({N_TRIALS} trials per point; "
        f"1 LSB of the 4-bit ADC = 62.5 mV)\n" + table
    )


def test_ablation_comparator_offset_robustness(benchmark, bench_seed, write_report):
    """Sweep the comparator offset sigma and check graceful degradation."""
    rows = benchmark.pedantic(lambda: _sweep(bench_seed), rounds=1, iterations=1)
    write_report("ablation_offset_variation", _render(rows))

    by_dataset: dict[str, list[dict]] = {}
    for row in rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    for dataset_rows in by_dataset.values():
        dataset_rows.sort(key=lambda r: r["sigma_mv"])
        # zero offset loses nothing
        assert dataset_rows[0]["mean_drop_pct"] == 0.0
        # sub-LSB offsets (<= 20 mV) stay within a modest accuracy drop
        small_sigma = [r for r in dataset_rows if r["sigma_mv"] <= 20.0]
        assert all(r["mean_drop_pct"] < 10.0 for r in small_sigma)
        # degradation is monotone-ish: the largest sigma is at least as bad
        # as the smallest non-zero sigma
        assert dataset_rows[-1]["mean_drop_pct"] >= dataset_rows[1]["mean_drop_pct"] - 1.0
