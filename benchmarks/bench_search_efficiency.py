"""Benchmark -- budgeted Pareto search vs. the exhaustive depth x tau grid.

The adaptive-search subsystem (:mod:`repro.search`) replaces the 49-point
exhaustive sweep with a seeded Pareto-TPE study under a fixed trial budget.
This benchmark quantifies the trade it makes: on each measured benchmark the
study trains **>= 5x fewer trees** than the grid while its front keeps
**>= 95% of the exhaustive front's hypervolume** (accuracy maximized, power
minimized, reference point just beyond the union of both fronts).

The study runs against a throwaway store, so every trial genuinely trains --
the trained-tree count is honest, not a warm-start artifact.  The exhaustive
side reuses the ordinary suite sweep (cached across nightly runs).  Rows
land in ``BENCH_search.json``; ``speedup`` is the trained-tree ratio
(grid / study), gated by ``benchmarks/baselines.json``.
"""

import os
import time

from repro.analysis.experiments import run_benchmark_suite
from repro.analysis.render import render_table
from repro.core.store import ResultStore
from repro.search import ParetoTPESampler, Study, hypervolume, paper_space

DATASETS = ("vertebral_2c", "seeds")
BUDGET = 9
BATCH_SIZE = 3
GRID_SIZE = 49  # |depths 2..8| x |taus 0..0.03 step 0.005|
MIN_HV_RATIO = 0.95
MIN_SPEEDUP = 5.0


def _reference_point(fronts) -> tuple[float, ...]:
    """A point weakly worse than every front point on every axis."""
    axes = zip(*[point for front in fronts for point in front])
    return tuple(max(axis) + 0.05 * (abs(max(axis)) + 1.0) for axis in axes)


def _grid_front(dataset: str, seed: int, jobs, cache_dir):
    """Minimize-tuples of the exhaustive sweep's design points."""
    [result] = run_benchmark_suite(
        datasets=(dataset,),
        seed=seed,
        include_approximate_baseline=False,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    assert len(result.exploration) == GRID_SIZE
    return [
        (-point.accuracy, point.hardware.total_power_uw)
        for point in result.exploration
    ]


def _run_study(dataset: str, seed: int, store: ResultStore):
    space = paper_space()
    study = Study(
        dataset,
        space=space,
        objectives=("-accuracy", "power"),
        seed=seed,
        store=store,
        batch_size=BATCH_SIZE,
        sampler=ParetoTPESampler(
            space, seed=seed, n_startup_trials=4, bandwidth=0.25
        ),
    )
    start = time.perf_counter()
    result = study.run(budget=BUDGET)
    return result, time.perf_counter() - start


def _measure(seed: int, jobs, cache_dir, tmp_path):
    rows = []
    for dataset in DATASETS:
        grid_objectives = _grid_front(dataset, seed, jobs, cache_dir)
        store = ResultStore(cache_dir=tmp_path / f"search-{dataset}")
        result, elapsed_s = _run_study(dataset, seed, store)
        study_front = [trial.objectives for trial in result.front]
        reference = _reference_point([grid_objectives, study_front])
        grid_hv = hypervolume(grid_objectives, reference)
        study_hv = hypervolume(study_front, reference)
        assert grid_hv > 0.0, f"degenerate exhaustive front on {dataset}"
        rows.append(
            {
                "dataset": dataset,
                "grid_trees": GRID_SIZE,
                "trained_trees": result.n_trained,
                "hv_ratio": study_hv / grid_hv,
                "front_size": len(result.front_numbers),
                "elapsed_s": elapsed_s,
                "trials_per_sec": len(result.trials) / elapsed_s,
                "speedup": GRID_SIZE / result.n_trained,
            }
        )
    return rows


def _render(rows) -> str:
    table = render_table(
        ["dataset", "grid trees", "study trees", "speedup (x)",
         "hv ratio", "front size", "study (s)"],
        [
            (r["dataset"], r["grid_trees"], r["trained_trees"], r["speedup"],
             r["hv_ratio"], r["front_size"], r["elapsed_s"])
            for r in rows
        ],
    )
    return (
        f"Budgeted Pareto search vs. the exhaustive grid (budget {BUDGET}, "
        f"objectives -accuracy/power; hv ratio vs. the {GRID_SIZE}-point sweep)\n"
        + table
    )


def _bench_rows(rows) -> list[dict]:
    """Rows of ``BENCH_search.json`` (schema: benchmarks/conftest.py)."""
    return [
        {
            "name": "budgeted_front",
            "dataset": r["dataset"],
            "samples_per_sec": r["trials_per_sec"],
            "unit": "trials/s",
            "speedup": r["speedup"],
            "hv_ratio": r["hv_ratio"],
        }
        for r in rows
    ]


def test_search_efficiency(
    benchmark, bench_seed, write_report, write_bench_json, tmp_path
):
    """>= 95% of the exhaustive hypervolume from >= 5x fewer trained trees."""
    jobs = int(os.environ["REPRO_BENCH_JOBS"]) if os.environ.get("REPRO_BENCH_JOBS") else None
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or None
    rows = benchmark.pedantic(
        lambda: _measure(bench_seed, jobs, cache_dir, tmp_path), rounds=1, iterations=1
    )
    write_report("search_efficiency", _render(rows))
    write_bench_json("search", _bench_rows(rows))
    for r in rows:
        assert r["speedup"] >= MIN_SPEEDUP, (
            f"{r['dataset']}: trained {r['trained_trees']} trees, only "
            f"{r['speedup']:.1f}x fewer than the grid (need >= {MIN_SPEEDUP:.0f}x)"
        )
        assert r["hv_ratio"] >= MIN_HV_RATIO, (
            f"{r['dataset']}: hv ratio {r['hv_ratio']:.4f} below "
            f"{MIN_HV_RATIO:.2f} of the exhaustive front"
        )
