"""Self-power feasibility (closing analysis of Section IV).

For every benchmark, compares the complete on-sensor system power (classifier
plus one 5 uW printed sensor per used input) against the 2 mW printed energy
harvester budget, for the baseline [2] and for the co-designed classifier at
<= 1 % accuracy loss.
"""

from repro.analysis.render import render_table
from repro.core.power_budget import analyze_self_power


def _rows(results):
    rows = []
    for result in results:
        technology = result.metadata.get("technology")
        baseline = analyze_self_power(result.baseline.hardware, technology)
        chosen = result.selected.get(0.01)
        codesign = (
            analyze_self_power(chosen.hardware, technology) if chosen is not None else None
        )
        rows.append(
            {
                "dataset": result.dataset,
                "baseline_total_mw": baseline.total_power_mw,
                "baseline_self_powered": baseline.is_self_powered,
                "codesign_total_mw": codesign.total_power_mw if codesign else float("nan"),
                "codesign_self_powered": codesign.is_self_powered if codesign else False,
                "sensor_power_mw": baseline.sensor_power_mw,
                "headroom_mw": codesign.headroom_mw if codesign else float("nan"),
            }
        )
    return rows


def _render(rows) -> str:
    table = render_table(
        ["dataset", "sensors (mW)", "baseline total (mW)", "baseline self-powered",
         "codesign total (mW)", "codesign self-powered", "headroom (mW)"],
        [
            (r["dataset"], r["sensor_power_mw"], r["baseline_total_mw"],
             r["baseline_self_powered"], r["codesign_total_mw"],
             r["codesign_self_powered"], r["headroom_mw"])
            for r in rows
        ],
    )
    return table + "\n(budget: 2 mW printed energy harvester; sensors: 5 uW per used input)"


def test_self_power_feasibility(benchmark, suite_results, write_report):
    """Check the self-powered-operation headline of the paper."""
    rows = benchmark.pedantic(lambda: _rows(suite_results), rounds=1, iterations=1)
    write_report("self_power_feasibility", _render(rows))

    assert all(not row["baseline_self_powered"] for row in rows)
    feasible = sum(row["codesign_self_powered"] for row in rows)
    assert feasible >= len(rows) - 1
    for row in rows:
        assert row["sensor_power_mw"] < 0.15  # sensors are negligible (Section IV)
