#!/usr/bin/env python
"""Gate the perf trajectory: fail when a benchmark speedup regresses.

Nightly CI runs the throughput benchmarks, which emit machine-readable
``benchmarks/results/BENCH_<name>.json`` files (schema: the
``write_bench_json`` fixture in ``benchmarks/conftest.py``).  This script
compares every ``speedup`` field against the committed floor in
``benchmarks/baselines.json`` and exits non-zero when any measured speedup
drops more than ``max_drop`` (default 25 %) below its baseline.

Speedups -- not absolute rates -- are gated: both sides of each speedup are
measured in the same process on the same host, so the ratio is stable across
runner generations while samples/sec is not.  Absolute rates still land in
the BENCH artifacts for trajectory plots; they are informational.

Ratchet policy
--------------
Baselines only move *up*, and only by a deliberate commit:

* When an optimization lands, raise the affected baselines toward the new
  steady-state (leave ~20 % headroom below the median of several CI runs --
  never ratchet to a lucky best case).
* Never lower a baseline to silence a failing check.  A red check means the
  change being tested slowed a measured path; fix the regression or, if the
  slowdown is a deliberate trade-off, lower the baseline in the same commit
  with a justification in the commit message.
* New benchmark rows start with a conservative floor (the assertion minimum
  of the benchmark itself, or ~70-80 % of locally measured medians).

Usage::

    python benchmarks/check_regression.py [--results benchmarks/results]
        [--baselines benchmarks/baselines.json] [--max-drop 0.25]

Rows present in the results but absent from the baselines are reported as
unguarded (not an error: new rows ratchet in via a follow-up commit).
Baseline entries with no matching measurement fail the check -- a renamed or
deleted benchmark must update the baseline file in the same change.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_BASELINES = Path(__file__).parent / "baselines.json"


def _row_key(bench: str, row: dict) -> str:
    """Stable identity of a measured row: ``bench/name[dataset]``."""
    return f"{bench}/{row['name']}[{row['dataset']}]"


def load_measurements(results_dir: Path) -> dict[str, dict]:
    """All measured rows of every ``BENCH_*.json`` in ``results_dir``."""
    measurements: dict[str, dict] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        for row in payload["rows"]:
            measurements[_row_key(payload["bench"], row)] = row
    return measurements


def check(
    results_dir: Path, baselines_path: Path, max_drop: float | None = None
) -> int:
    """Compare measurements against baselines; return a process exit code."""
    baselines = json.loads(baselines_path.read_text())
    if max_drop is None:
        max_drop = float(baselines.get("max_drop", 0.25))
    measurements = load_measurements(results_dir)
    if not measurements:
        print(f"error: no BENCH_*.json files under {results_dir}", file=sys.stderr)
        return 2

    failures: list[str] = []
    guarded: set[str] = set()
    for key, floor in baselines["speedups"].items():
        guarded.add(key)
        row = measurements.get(key)
        if row is None:
            failures.append(
                f"{key}: baseline has no measurement -- a renamed or removed "
                f"benchmark must update baselines.json in the same change"
            )
            continue
        measured = float(row["speedup"])
        minimum = floor * (1.0 - max_drop)
        status = "ok" if measured >= minimum else "FAIL"
        print(
            f"{status:4s} {key}: speedup {measured:.2f}x "
            f"(baseline {floor:.2f}x, floor {minimum:.2f}x)"
        )
        if measured < minimum:
            failures.append(
                f"{key}: speedup {measured:.2f}x dropped more than "
                f"{max_drop:.0%} below the {floor:.2f}x baseline"
            )

    for key in sorted(set(measurements) - guarded):
        print(f"note {key}: measured but not in baselines.json (unguarded)")

    if failures:
        print("\nperf regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nperf regression check passed ({len(guarded)} guarded rows)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        type=Path,
        default=DEFAULT_RESULTS_DIR,
        help="directory holding the BENCH_*.json files",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=DEFAULT_BASELINES,
        help="committed baseline file",
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=None,
        help="allowed fractional drop below baseline (default: from baselines.json)",
    )
    args = parser.parse_args(argv)
    return check(args.results, args.baselines, args.max_drop)


if __name__ == "__main__":
    raise SystemExit(main())
