"""Fig. 4 -- gains of the parallel unary architecture + bespoke ADCs over [2].

For every benchmark, the *same* ADC-unaware trained model as in Table I is
re-implemented with the proposed architecture (two-level unary label logic,
bespoke ADCs, no priority encoder) and the total area/power reduction factors
over the baseline are reported.  Paper averages: 3.0x area, 6.6x power.
"""

from repro.analysis.figures import fig4_series
from repro.analysis.render import render_table


def _render(series: dict) -> str:
    table = render_table(
        ["dataset", "area reduction (x)", "power reduction (x)"],
        [
            (row["abbreviation"], row["area_reduction_x"], row["power_reduction_x"])
            for row in series["rows"]
        ],
    )
    footer = (
        f"\nAverages: {series['average_area_reduction_x']:.1f}x area "
        f"(paper: 3.0x), {series['average_power_reduction_x']:.1f}x power (paper: 6.6x)"
    )
    return table + footer


def test_fig4_unary_architecture_gains(benchmark, suite_results, write_report):
    """Regenerate the Fig. 4 reduction factors."""
    series = benchmark.pedantic(
        lambda: fig4_series(suite_results), rounds=1, iterations=1
    )
    write_report("fig4_unary_gains", _render(series))

    assert len(series["rows"]) == len(suite_results)
    # Every benchmark must win on both axes, by a sizeable margin on average.
    for row in series["rows"]:
        assert row["area_reduction_x"] > 1.0
        assert row["power_reduction_x"] > 1.0
    assert series["average_area_reduction_x"] > 2.0
    assert series["average_power_reduction_x"] > 2.5
