"""Ablation -- the secondary (power) objective of Algorithm 1.

Algorithm 1 first minimizes the number of comparators (S_Z -> S_M -> S_H
ordering) and then, among equally costly alternatives, prefers the smallest
threshold because low reference levels yield low comparator power (Fig. 3).
This ablation disables that second preference
(``prefer_low_power_levels=False``) and measures how much ADC power the
full algorithm saves across the benchmark suite at tau = 0.02.
"""

from statistics import mean

from repro.analysis.render import render_table
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.exploration import proposed_hardware_report
from repro.datasets.registry import load_dataset
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.quantize import quantize_dataset
from repro.pdk.egfet import default_technology

DATASETS = ("balance_scale", "vertebral_3c", "vertebral_2c", "seeds", "cardio")
TAU = 0.02
DEPTH = 6


def _compare(seed: int = 0):
    technology = default_technology()
    rows = []
    for name in DATASETS:
        dataset = load_dataset(name, seed=seed)
        X_train, X_test, y_train, y_test = train_test_split(
            dataset.X, dataset.y, test_size=0.3, seed=seed
        )
        X_train_levels = quantize_dataset(X_train)

        variants = {}
        for label, prefer in (("with level preference", True), ("without", False)):
            tree = ADCAwareTrainer(
                max_depth=DEPTH,
                gini_threshold=TAU,
                seed=seed,
                prefer_low_power_levels=prefer,
            ).fit(X_train_levels, y_train, dataset.n_classes)
            variants[label] = proposed_hardware_report(tree, technology, name=label)

        with_pref = variants["with level preference"]
        without_pref = variants["without"]
        rows.append(
            {
                "dataset": name,
                "adc_power_with_uw": with_pref.adc_power_uw,
                "adc_power_without_uw": without_pref.adc_power_uw,
                "adc_power_saving_pct": (
                    (without_pref.adc_power_uw - with_pref.adc_power_uw)
                    / without_pref.adc_power_uw * 100.0
                    if without_pref.adc_power_uw > 0 else 0.0
                ),
                "comparators_with": with_pref.n_adc_comparators,
                "comparators_without": without_pref.n_adc_comparators,
            }
        )
    return rows


def _render(rows) -> str:
    table = render_table(
        ["dataset", "ADC power w/ pref (uW)", "ADC power w/o pref (uW)",
         "saving (%)", "#comp w/ pref", "#comp w/o pref"],
        [
            (r["dataset"], r["adc_power_with_uw"], r["adc_power_without_uw"],
             r["adc_power_saving_pct"], r["comparators_with"], r["comparators_without"])
            for r in rows
        ],
    )
    average = mean(r["adc_power_saving_pct"] for r in rows)
    return (
        f"Algorithm 1 secondary objective ablation (tau={TAU}, depth={DEPTH})\n"
        + table
        + f"\nAverage ADC power saving from the low-level preference: {average:.1f}%"
    )


def test_ablation_low_level_preference(benchmark, bench_seed, write_report):
    """Disable the low-reference-level preference and measure the power impact."""
    rows = benchmark.pedantic(lambda: _compare(bench_seed), rounds=1, iterations=1)
    write_report("ablation_cost_ordering", _render(rows))

    average_saving = mean(r["adc_power_saving_pct"] for r in rows)
    # The preference should not hurt on average (it targets power directly).
    assert average_saving > -5.0
    # Comparator counts should be in the same ballpark either way (the primary
    # objective is unchanged by the ablation).
    for row in rows:
        assert abs(row["comparators_with"] - row["comparators_without"]) <= max(
            5, row["comparators_without"]
        )
