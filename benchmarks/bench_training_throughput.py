"""Benchmark -- columnar vs. legacy split search on full-grid training.

The columnar :class:`~repro.mltrees.split_search.CandidateTable` refactor
replaced the per-feature Python loop and the per-candidate object
construction of the split search with one histogram/cumsum pass over all
features and array reductions during selection.  This benchmark measures the
end-to-end effect where it matters for the design-space exploration: a
depth-8 "full grid" training workload -- one conventional CART fit plus one
ADC-aware fit per tau of the paper's grid -- on the two widest benchmarks.

The legacy side runs the retained pre-refactor reference trainers
(:mod:`repro.mltrees.legacy_split_search`), i.e. exactly the old hot loop;
the produced trees are asserted node-for-node identical before timing is
trusted, so the speedup compares equal answers.
"""

import time

from repro.analysis.render import render_table
from repro.core.adc_aware_training import ADCAwareTrainer
from repro.core.exploration import DEFAULT_TAUS
from repro.datasets.registry import load_dataset
from repro.mltrees.cart import CARTTrainer
from repro.mltrees.evaluation import train_test_split
from repro.mltrees.legacy_split_search import LegacyADCAwareTrainer, LegacyCARTTrainer
from repro.mltrees.quantize import quantize_dataset

DATASETS = ("cardio", "arrhythmia")
DEPTH = 8
MIN_SPEEDUP = 5.0


def _training_data(name: str, seed: int):
    dataset = load_dataset(name, seed=seed)
    X_train, _, y_train, _ = train_test_split(
        dataset.X, dataset.y, test_size=0.3, seed=seed
    )
    return quantize_dataset(X_train), y_train, dataset.n_classes


def _full_grid(cart_cls, adc_cls, X_levels, y, n_classes, seed: int):
    """Depth-8 grid workload: one CART fit + one ADC-aware fit per tau."""
    trees = [cart_cls(max_depth=DEPTH, seed=seed).fit(X_levels, y, n_classes)]
    for tau in DEFAULT_TAUS:
        trees.append(
            adc_cls(max_depth=DEPTH, gini_threshold=tau, seed=seed).fit(
                X_levels, y, n_classes
            )
        )
    return trees


def _measure(seed: int):
    rows = []
    for name in DATASETS:
        X_levels, y, n_classes = _training_data(name, seed)
        n_fits = 1 + len(DEFAULT_TAUS)

        start = time.perf_counter()
        columnar_trees = _full_grid(
            CARTTrainer, ADCAwareTrainer, X_levels, y, n_classes, seed
        )
        columnar_s = time.perf_counter() - start

        start = time.perf_counter()
        legacy_trees = _full_grid(
            LegacyCARTTrainer, LegacyADCAwareTrainer, X_levels, y, n_classes, seed
        )
        legacy_s = time.perf_counter() - start

        # The refactor must not change a single node before timing counts.
        assert columnar_trees == legacy_trees, f"trees diverge on {name}"

        rows.append(
            {
                "dataset": name,
                "n_fits": n_fits,
                "legacy_s": legacy_s,
                "columnar_s": columnar_s,
                "legacy_rate": n_fits / legacy_s,
                "columnar_rate": n_fits / columnar_s,
                "speedup": legacy_s / columnar_s,
            }
        )
    total_legacy = sum(r["legacy_s"] for r in rows)
    total_columnar = sum(r["columnar_s"] for r in rows)
    rows.append(
        {
            "dataset": "TOTAL",
            "n_fits": sum(r["n_fits"] for r in rows),
            "legacy_s": total_legacy,
            "columnar_s": total_columnar,
            "legacy_rate": sum(r["n_fits"] for r in rows) / total_legacy,
            "columnar_rate": sum(r["n_fits"] for r in rows) / total_columnar,
            "speedup": total_legacy / total_columnar,
        }
    )
    return rows


def _render(rows) -> str:
    table = render_table(
        ["dataset", "fits", "legacy (s)", "columnar (s)",
         "legacy fits/s", "columnar fits/s", "speedup (x)"],
        [
            (r["dataset"], r["n_fits"], r["legacy_s"], r["columnar_s"],
             r["legacy_rate"], r["columnar_rate"], r["speedup"])
            for r in rows
        ],
    )
    return (
        f"Columnar split-search training throughput (depth-{DEPTH} full-grid "
        f"workload: 1 CART + {len(DEFAULT_TAUS)} ADC-aware fits per dataset)\n"
        + table
    )


def _bench_rows(rows) -> list[dict]:
    """Rows of ``BENCH_training.json`` (schema: benchmarks/conftest.py)."""
    return [
        {
            "name": "full_grid_fits" if r["dataset"] != "TOTAL" else "full_grid_total",
            "dataset": r["dataset"],
            "samples_per_sec": r["columnar_rate"],
            "unit": "fits/s",
            "speedup": r["speedup"],
        }
        for r in rows
    ]


def test_training_throughput(benchmark, bench_seed, write_report, write_bench_json):
    """Depth-8 full-grid training is >= 5x faster than the legacy loop."""
    rows = benchmark.pedantic(lambda: _measure(bench_seed), rounds=1, iterations=1)
    write_report("training_throughput", _render(rows))
    write_bench_json("training", _bench_rows(rows))
    total = rows[-1]
    assert total["speedup"] >= MIN_SPEEDUP, (
        f"full-grid training: only {total['speedup']:.1f}x over the legacy "
        f"split search (need >= {MIN_SPEEDUP:.0f}x)"
    )
